//! Static routing — the NOAH ("NO Ad-Hoc routing") agent of the paper's
//! ns-2 setup. Routes are installed once from the flow paths and never
//! change, isolating the MAC-layer phenomena under study from routing
//! dynamics.

/// A static next-hop table.
///
/// Stored as per-node sorted `(final destination, next hop)` lists rather
/// than a `HashMap<(node, dst), next>`: lookups sit on the per-packet
/// forwarding path, nodes have at most a handful of destinations, and a
/// linear probe of a four-entry slice beats hashing a 16-byte key every
/// time. The node index itself is a direct array index.
#[derive(Debug, Default, Clone)]
pub struct StaticRouting {
    /// `by_node[node]` = sorted `(final destination, next hop)` pairs.
    by_node: Vec<Vec<(usize, usize)>>,
    /// Total installed entries across all nodes.
    entries: usize,
}

impl StaticRouting {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs routes for every hop of `path` toward `path.last()`.
    ///
    /// Panics if a conflicting route for the same `(node, destination)`
    /// pair already exists — two flows to the same destination must share a
    /// suffix, anything else is a topology specification bug.
    pub fn install_path(&mut self, path: &[usize]) {
        assert!(path.len() >= 2, "a path needs at least two nodes");
        let dst = *path.last().expect("non-empty");
        for w in path.windows(2) {
            let (node, next) = (w[0], w[1]);
            if node >= self.by_node.len() {
                self.by_node.resize(node + 1, Vec::new());
            }
            let routes = &mut self.by_node[node];
            match routes.binary_search_by_key(&dst, |&(d, _)| d) {
                Ok(i) => assert!(
                    routes[i].1 == next,
                    "conflicting route at node {} toward {}: {} vs {}",
                    node,
                    dst,
                    routes[i].1,
                    next
                ),
                Err(i) => {
                    routes.insert(i, (dst, next));
                    self.entries += 1;
                }
            }
        }
    }

    /// Next hop from `node` toward `final_dst`, if routed.
    pub fn next_hop(&self, node: usize, final_dst: usize) -> Option<usize> {
        let routes = self.by_node.get(node)?;
        routes
            .iter()
            .find(|&&(d, _)| d == final_dst)
            .map(|&(_, next)| next)
    }

    /// All distinct successors of `node` (over all destinations), sorted.
    pub fn successors(&self, node: usize) -> Vec<usize> {
        let mut v: Vec<usize> = match self.by_node.get(node) {
            Some(routes) => routes.iter().map(|&(_, next)| next).collect(),
            None => Vec::new(),
        };
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True iff no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// Shortest-path trees toward the nearest gateway, computed over the
/// decode graph by multi-source BFS.
///
/// The scenario compiler (see [`crate::scenario`]) uses this to route
/// generated topologies: every node gets the gateway closest in hop
/// count, ties broken toward the lowest gateway id and then the lowest
/// parent id. Each node has exactly *one* parent, so every produced path
/// toward a gateway shares its suffix with every other path through the
/// same node — precisely the no-conflict invariant
/// [`StaticRouting::install_path`] asserts.
#[derive(Debug, Clone)]
pub struct GatewayRoutes {
    /// `parent[v]` = next hop toward `gateway[v]` (`usize::MAX` at
    /// gateways and unreachable nodes).
    parent: Vec<usize>,
    /// Hop distance to the assigned gateway (`usize::MAX` if unreachable).
    dist: Vec<usize>,
    /// The gateway each node drains to (`usize::MAX` if unreachable).
    gateway: Vec<usize>,
}

impl GatewayRoutes {
    /// Runs the multi-source BFS. `adj` is the (symmetric) decode
    /// adjacency, `gateways` the drain set. Determinism: gateways are
    /// seeded in ascending id order and each adjacency list is scanned
    /// in ascending order, so first-come-wins tie-breaking is a pure
    /// function of the graph.
    pub fn compute(adj: &[Vec<usize>], gateways: &[usize]) -> Self {
        let n = adj.len();
        let mut parent = vec![usize::MAX; n];
        let mut dist = vec![usize::MAX; n];
        let mut gateway = vec![usize::MAX; n];
        let mut sorted: Vec<usize> = gateways.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut frontier: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &g in &sorted {
            assert!(g < n, "gateway {g} out of bounds for {n} nodes");
            dist[g] = 0;
            gateway[g] = g;
            frontier.push_back(g);
        }
        while let Some(v) = frontier.pop_front() {
            let mut next: Vec<usize> = adj[v].clone();
            next.sort_unstable();
            for w in next {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    parent[w] = v;
                    gateway[w] = gateway[v];
                    frontier.push_back(w);
                }
            }
        }
        GatewayRoutes {
            parent,
            dist,
            gateway,
        }
    }

    /// The path from `src` to its assigned gateway (inclusive), or
    /// `None` if `src` cannot reach any gateway.
    pub fn path_from(&self, src: usize) -> Option<Vec<usize>> {
        if self.dist.get(src).copied().unwrap_or(usize::MAX) == usize::MAX {
            return None;
        }
        let mut path = vec![src];
        let mut v = src;
        while self.parent[v] != usize::MAX {
            v = self.parent[v];
            path.push(v);
        }
        Some(path)
    }

    /// Hop distance from `v` to its gateway (`None` if unreachable).
    pub fn dist(&self, v: usize) -> Option<usize> {
        match self.dist[v] {
            usize::MAX => None,
            d => Some(d),
        }
    }

    /// The gateway `v` drains to (`None` if unreachable).
    pub fn gateway_of(&self, v: usize) -> Option<usize> {
        match self.gateway[v] {
            usize::MAX => None,
            g => Some(g),
        }
    }

    /// Nodes that cannot reach any gateway, ascending.
    pub fn unreachable(&self) -> Vec<usize> {
        (0..self.dist.len())
            .filter(|&v| self.dist[v] == usize::MAX)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installs_chain() {
        let mut r = StaticRouting::new();
        r.install_path(&[0, 1, 2, 3]);
        assert_eq!(r.next_hop(0, 3), Some(1));
        assert_eq!(r.next_hop(1, 3), Some(2));
        assert_eq!(r.next_hop(2, 3), Some(3));
        assert_eq!(r.next_hop(3, 3), None);
        assert_eq!(r.next_hop(0, 2), None, "routes are per final destination");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn merging_flows_share_suffix() {
        let mut r = StaticRouting::new();
        // Scenario 1: two branches merging at node 4 toward gateway 0.
        r.install_path(&[12, 10, 8, 6, 4, 3, 2, 1, 0]);
        r.install_path(&[11, 9, 7, 5, 4, 3, 2, 1, 0]);
        assert_eq!(r.next_hop(4, 0), Some(3));
        assert_eq!(r.successors(4), vec![3]);
        assert_eq!(r.successors(12), vec![10]);
    }

    #[test]
    #[should_panic(expected = "conflicting route")]
    fn conflicting_routes_panic() {
        let mut r = StaticRouting::new();
        r.install_path(&[0, 1, 3]);
        r.install_path(&[0, 2, 3]);
    }

    #[test]
    fn successors_dedup_across_destinations() {
        let mut r = StaticRouting::new();
        r.install_path(&[0, 1, 2]);
        r.install_path(&[0, 1, 3]);
        assert_eq!(r.successors(0), vec![1]);
    }

    #[test]
    fn reinstalling_the_same_path_does_not_double_count() {
        let mut r = StaticRouting::new();
        r.install_path(&[0, 1, 2]);
        r.install_path(&[0, 1, 2]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    /// Chain 0-1-2-3-4 plus a spur 5 hanging off node 2, node 6 isolated.
    fn spur_adj() -> Vec<Vec<usize>> {
        vec![
            vec![1],
            vec![0, 2],
            vec![1, 3, 5],
            vec![2, 4],
            vec![3],
            vec![2],
            vec![],
        ]
    }

    #[test]
    fn gateway_routes_pick_nearest_gateway() {
        let g = GatewayRoutes::compute(&spur_adj(), &[0, 4]);
        assert_eq!(g.path_from(1), Some(vec![1, 0]));
        assert_eq!(g.path_from(3), Some(vec![3, 4]));
        assert_eq!(g.gateway_of(1), Some(0));
        assert_eq!(g.gateway_of(3), Some(4));
        assert_eq!(g.dist(0), Some(0));
        assert_eq!(
            g.path_from(0),
            Some(vec![0]),
            "gateways route to themselves"
        );
        assert_eq!(g.unreachable(), vec![6]);
        assert_eq!(g.path_from(6), None);
    }

    #[test]
    fn gateway_ties_break_to_lowest_gateway_id() {
        // Node 2 is 2 hops from both gateways; the BFS seeds gateways
        // ascending, so gateway 0's wavefront claims it first.
        let g = GatewayRoutes::compute(&spur_adj(), &[0, 4]);
        assert_eq!(g.gateway_of(2), Some(0));
        assert_eq!(g.path_from(2), Some(vec![2, 1, 0]));
        assert_eq!(g.path_from(5), Some(vec![5, 2, 1, 0]));
    }

    #[test]
    fn gateway_trees_install_without_conflicts() {
        // Unique parents ⇒ all root-ward paths share suffixes, so
        // installing every path into one StaticRouting must not panic.
        let g = GatewayRoutes::compute(&spur_adj(), &[0, 4]);
        let mut r = StaticRouting::new();
        for v in 0..6 {
            let path = g.path_from(v).unwrap();
            if path.len() >= 2 {
                r.install_path(&path);
            }
        }
        assert_eq!(r.next_hop(5, 0), Some(2));
    }

    #[test]
    fn gateway_routes_are_deterministic() {
        let a = GatewayRoutes::compute(&spur_adj(), &[4, 0]);
        let b = GatewayRoutes::compute(&spur_adj(), &[0, 4]);
        for v in 0..7 {
            assert_eq!(
                a.path_from(v),
                b.path_from(v),
                "gateway order is irrelevant"
            );
        }
    }
}
