//! Static routing — the NOAH ("NO Ad-Hoc routing") agent of the paper's
//! ns-2 setup. Routes are installed once from the flow paths and never
//! change, isolating the MAC-layer phenomena under study from routing
//! dynamics.

/// A static next-hop table.
///
/// Stored as per-node sorted `(final destination, next hop)` lists rather
/// than a `HashMap<(node, dst), next>`: lookups sit on the per-packet
/// forwarding path, nodes have at most a handful of destinations, and a
/// linear probe of a four-entry slice beats hashing a 16-byte key every
/// time. The node index itself is a direct array index.
#[derive(Debug, Default, Clone)]
pub struct StaticRouting {
    /// `by_node[node]` = sorted `(final destination, next hop)` pairs.
    by_node: Vec<Vec<(usize, usize)>>,
    /// Total installed entries across all nodes.
    entries: usize,
}

impl StaticRouting {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs routes for every hop of `path` toward `path.last()`.
    ///
    /// Panics if a conflicting route for the same `(node, destination)`
    /// pair already exists — two flows to the same destination must share a
    /// suffix, anything else is a topology specification bug.
    pub fn install_path(&mut self, path: &[usize]) {
        assert!(path.len() >= 2, "a path needs at least two nodes");
        let dst = *path.last().expect("non-empty");
        for w in path.windows(2) {
            let (node, next) = (w[0], w[1]);
            if node >= self.by_node.len() {
                self.by_node.resize(node + 1, Vec::new());
            }
            let routes = &mut self.by_node[node];
            match routes.binary_search_by_key(&dst, |&(d, _)| d) {
                Ok(i) => assert!(
                    routes[i].1 == next,
                    "conflicting route at node {} toward {}: {} vs {}",
                    node,
                    dst,
                    routes[i].1,
                    next
                ),
                Err(i) => {
                    routes.insert(i, (dst, next));
                    self.entries += 1;
                }
            }
        }
    }

    /// Next hop from `node` toward `final_dst`, if routed.
    pub fn next_hop(&self, node: usize, final_dst: usize) -> Option<usize> {
        let routes = self.by_node.get(node)?;
        routes
            .iter()
            .find(|&&(d, _)| d == final_dst)
            .map(|&(_, next)| next)
    }

    /// All distinct successors of `node` (over all destinations), sorted.
    pub fn successors(&self, node: usize) -> Vec<usize> {
        let mut v: Vec<usize> = match self.by_node.get(node) {
            Some(routes) => routes.iter().map(|&(_, next)| next).collect(),
            None => Vec::new(),
        };
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True iff no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installs_chain() {
        let mut r = StaticRouting::new();
        r.install_path(&[0, 1, 2, 3]);
        assert_eq!(r.next_hop(0, 3), Some(1));
        assert_eq!(r.next_hop(1, 3), Some(2));
        assert_eq!(r.next_hop(2, 3), Some(3));
        assert_eq!(r.next_hop(3, 3), None);
        assert_eq!(r.next_hop(0, 2), None, "routes are per final destination");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn merging_flows_share_suffix() {
        let mut r = StaticRouting::new();
        // Scenario 1: two branches merging at node 4 toward gateway 0.
        r.install_path(&[12, 10, 8, 6, 4, 3, 2, 1, 0]);
        r.install_path(&[11, 9, 7, 5, 4, 3, 2, 1, 0]);
        assert_eq!(r.next_hop(4, 0), Some(3));
        assert_eq!(r.successors(4), vec![3]);
        assert_eq!(r.successors(12), vec![10]);
    }

    #[test]
    #[should_panic(expected = "conflicting route")]
    fn conflicting_routes_panic() {
        let mut r = StaticRouting::new();
        r.install_path(&[0, 1, 3]);
        r.install_path(&[0, 2, 3]);
    }

    #[test]
    fn successors_dedup_across_destinations() {
        let mut r = StaticRouting::new();
        r.install_path(&[0, 1, 2]);
        r.install_path(&[0, 1, 3]);
        assert_eq!(r.successors(0), vec![1]);
    }

    #[test]
    fn reinstalling_the_same_path_does_not_double_count() {
        let mut r = StaticRouting::new();
        r.install_path(&[0, 1, 2]);
        r.install_path(&[0, 1, 2]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }
}
