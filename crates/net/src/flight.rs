//! The packet flight recorder.
//!
//! Where the [`TraceRing`](ezflow_sim::TraceRing) answers "what happened
//! recently, anywhere?", the [`FlightRecorder`] answers "what happened to
//! *this packet*?". Every data packet admitted while the recorder is
//! enabled gets a journey — the time-ordered list of its lifecycle
//! [`TraceEvent`]s from source admission through every hop's
//! enqueue/dequeue/attempt to terminal delivery or drop. The engine feeds
//! it; the `trace` inspector CLI and the experiment harness read the JSONL
//! export.
//!
//! Budget discipline: the recorder is bounded by a packet cap, recycles
//! event buffers through a pool instead of freeing them, and when the cap
//! is hit with no finished journey to evict it **samples** — the admission
//! stride doubles and the skip is counted in [`FlightStats`], never
//! silent. With `cap == 0` the recorder is disabled and every call is a
//! no-op behind one branch, keeping the hot path cost-free.

use std::collections::{BTreeMap, VecDeque};

use ezflow_sim::{DropCause, Time, TraceEvent, TraceKind, TracePayload};

/// One packet's recorded lifecycle.
#[derive(Debug)]
struct Journey {
    events: Vec<TraceEvent>,
    done: bool,
}

/// Bookkeeping counters of a [`FlightRecorder`] — how many packets were
/// recorded, sampled away, or evicted, and the current admission stride.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightStats {
    /// Packets whose journeys were (or still are) recorded.
    pub tracked: u64,
    /// Packets not recorded because of sampling or budget pressure.
    pub skipped: u64,
    /// Finished journeys evicted to make room for new admissions.
    pub evicted: u64,
    /// Current admission stride: 1 records every packet, `n` records every
    /// n-th. Doubles whenever the cap is hit with nothing evictable.
    pub stride: u64,
}

/// A bounded recorder of per-packet lifecycle journeys.
pub struct FlightRecorder {
    cap: usize,
    records: BTreeMap<u64, Journey>,
    /// Seqs of finished journeys, oldest first — the eviction queue.
    done_order: VecDeque<u64>,
    /// Recycled event buffers from evicted journeys.
    pool: Vec<Vec<TraceEvent>>,
    stride: u64,
    offered: u64,
    tracked: u64,
    skipped: u64,
    evicted: u64,
}

// The recorder lives inside `Network`, which sweep runners move across
// threads; keep it `Send` (compile-time check, like `TraceRing`'s).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<FlightRecorder>();
};

impl FlightRecorder {
    /// Creates a recorder keeping at most `cap` packet journeys;
    /// `cap == 0` disables recording entirely.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap,
            records: BTreeMap::new(),
            done_order: VecDeque::new(),
            pool: Vec::new(),
            stride: 1,
            offered: 0,
            tracked: 0,
            skipped: 0,
            evicted: 0,
        }
    }

    /// Whether journeys are being recorded. The engine guards every
    /// recording site with this so a disabled recorder costs one branch.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Offers a newly admitted packet for tracking and, if accepted,
    /// records `event` (normally the `Admit` record) as the journey's
    /// first entry. Returns whether the packet is now tracked.
    ///
    /// Acceptance is deterministic: every `stride`-th offered packet is
    /// taken. When the cap is reached, the oldest *finished* journey is
    /// evicted; if every tracked journey is still in flight the stride
    /// doubles instead and this packet is skipped (counted, never silent).
    pub fn admit(&mut self, seq: u64, event: TraceEvent) -> bool {
        if self.cap == 0 {
            return false;
        }
        let slot = self.offered;
        self.offered += 1;
        if !slot.is_multiple_of(self.stride) {
            self.skipped += 1;
            return false;
        }
        if self.records.len() >= self.cap && !self.evict_oldest_done() {
            self.stride = self.stride.saturating_mul(2);
            self.skipped += 1;
            return false;
        }
        let mut events = self.pool.pop().unwrap_or_default();
        events.push(event);
        self.records.insert(
            seq,
            Journey {
                events,
                done: false,
            },
        );
        self.tracked += 1;
        true
    }

    /// Appends `event` to the journey of packet `seq`, if it is tracked.
    /// Finished journeys are sealed: the terminal delivery/drop is the
    /// packet's last word, and trailing MAC bookkeeping that reuses its
    /// sequence number (the final hop ACK's decode outcome, duplicate
    /// deliveries of a retransmission) is not appended.
    pub fn record(&mut self, seq: u64, event: TraceEvent) {
        if self.cap == 0 {
            return;
        }
        if let Some(j) = self.records.get_mut(&seq) {
            if !j.done {
                j.events.push(event);
            }
        }
    }

    /// Marks packet `seq`'s journey as finished (delivered or dropped),
    /// making it eligible for eviction under budget pressure.
    pub fn complete(&mut self, seq: u64) {
        if let Some(j) = self.records.get_mut(&seq) {
            if !j.done {
                j.done = true;
                self.done_order.push_back(seq);
            }
        }
    }

    /// Whether packet `seq`'s journey is being recorded. Lets the engine
    /// skip building events (e.g. controller-counter deltas) for packets
    /// nobody is watching.
    pub fn is_tracked(&self, seq: u64) -> bool {
        self.cap > 0 && self.records.contains_key(&seq)
    }

    /// The recorded journey of packet `seq`, oldest event first.
    pub fn journey(&self, seq: u64) -> Option<&[TraceEvent]> {
        self.records.get(&seq).map(|j| j.events.as_slice())
    }

    /// Number of journeys currently held.
    pub fn packets(&self) -> usize {
        self.records.len()
    }

    /// Total events currently held across all journeys.
    pub fn events(&self) -> usize {
        self.records.values().map(|j| j.events.len()).sum()
    }

    /// Current bookkeeping counters.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            tracked: self.tracked,
            skipped: self.skipped,
            evicted: self.evicted,
            stride: self.stride,
        }
    }

    /// Exports every held journey as JSONL, one event per line, globally
    /// ordered by (time, packet id, within-packet order) — a stable order
    /// independent of map internals, so exports are byte-reproducible.
    pub fn to_jsonl(&self) -> String {
        let mut all: Vec<(u64, u64, usize, &TraceEvent)> = Vec::with_capacity(self.events());
        for (&seq, j) in &self.records {
            for (i, ev) in j.events.iter().enumerate() {
                all.push((ev.at.as_micros(), seq, i, ev));
            }
        }
        all.sort_by_key(|&(at, seq, i, _)| (at, seq, i));
        let mut out = String::new();
        for (_, _, _, ev) in all {
            out.push_str(&ev.to_json().to_compact());
            out.push('\n');
        }
        out
    }

    fn evict_oldest_done(&mut self) -> bool {
        while let Some(seq) = self.done_order.pop_front() {
            if let Some(mut j) = self.records.remove(&seq) {
                j.events.clear();
                self.pool.push(j.events);
                self.evicted += 1;
                return true;
            }
        }
        false
    }
}

/// Groups a flat event list (e.g. a parsed JSONL export) into per-packet
/// journeys, keyed by packet id. Events without a packet id (`Queue`,
/// `CwChange`, ...) are ignored. Within a journey the input order is
/// preserved, which for recorder exports is lifecycle order.
pub fn group_journeys(events: &[TraceEvent]) -> BTreeMap<u64, Vec<TraceEvent>> {
    let mut out: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    for ev in events {
        if let Some(seq) = ev.payload.packet() {
            out.entry(seq).or_default().push(*ev);
        }
    }
    out
}

/// The condensed story of one packet's journey, derived from its events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JourneySummary {
    /// Packet id.
    pub seq: u64,
    /// Flow id, if any lifecycle record named it.
    pub flow: Option<u32>,
    /// Nodes the packet was enqueued at, in hop order (source first).
    pub hops: Vec<usize>,
    /// Total DCF transmission attempts across all hops.
    pub attempts: u64,
    /// When the packet was admitted at its source.
    pub admitted: Option<Time>,
    /// When (and where) the packet reached its final destination.
    pub delivered: Option<(Time, usize)>,
    /// When, where, and why the packet was dropped.
    pub dropped: Option<(Time, usize, DropCause)>,
}

impl JourneySummary {
    /// End-to-end latency in microseconds, for delivered packets with a
    /// recorded admission.
    pub fn latency_us(&self) -> Option<u64> {
        let (at, _) = self.delivered?;
        let admitted = self.admitted?;
        Some(at.as_micros().saturating_sub(admitted.as_micros()))
    }
}

/// Condenses one packet's journey (events in lifecycle order, as recorded
/// or as grouped by [`group_journeys`]) into a [`JourneySummary`].
pub fn summarize_journey(seq: u64, events: &[TraceEvent]) -> JourneySummary {
    let mut s = JourneySummary {
        seq,
        flow: None,
        hops: Vec::new(),
        attempts: 0,
        admitted: None,
        delivered: None,
        dropped: None,
    };
    for ev in events {
        match ev.payload {
            TracePayload::Admit { flow, .. } => {
                s.flow.get_or_insert(flow);
                s.admitted.get_or_insert(ev.at);
                if s.hops.is_empty() {
                    s.hops.push(ev.node);
                }
            }
            TracePayload::Enqueue { flow, .. } => {
                s.flow.get_or_insert(flow);
                if s.hops.last() != Some(&ev.node) {
                    s.hops.push(ev.node);
                }
            }
            TracePayload::Attempt { .. } => s.attempts += 1,
            TracePayload::Deliver { flow, .. } => {
                s.flow.get_or_insert(flow);
                s.delivered.get_or_insert((ev.at, ev.node));
            }
            TracePayload::Drop { cause, .. } if ev.kind == TraceKind::Drop => {
                s.dropped.get_or_insert((ev.at, ev.node, cause));
            }
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    fn admit_ev(us: u64, node: usize, seq: u64) -> TraceEvent {
        TraceEvent {
            at: t(us),
            node,
            kind: TraceKind::Admit,
            payload: TracePayload::Admit { seq, flow: 1 },
        }
    }

    fn ev(us: u64, node: usize, kind: TraceKind, payload: TracePayload) -> TraceEvent {
        TraceEvent {
            at: t(us),
            node,
            kind,
            payload,
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut fr = FlightRecorder::new(0);
        assert!(!fr.enabled());
        assert!(!fr.admit(1, admit_ev(0, 0, 1)));
        fr.record(1, admit_ev(0, 0, 1));
        assert_eq!(fr.packets(), 0);
        assert_eq!(fr.stats().tracked, 0);
        assert_eq!(fr.stats().skipped, 0, "disabled != sampled");
    }

    #[test]
    fn records_full_journey_in_order() {
        let mut fr = FlightRecorder::new(8);
        assert!(fr.admit(7, admit_ev(0, 0, 7)));
        fr.record(
            7,
            ev(
                1,
                0,
                TraceKind::Enqueue,
                TracePayload::Enqueue {
                    seq: 7,
                    flow: 1,
                    occupancy: 1,
                    cap: 50,
                },
            ),
        );
        fr.record(
            7,
            ev(
                2,
                2,
                TraceKind::Deliver,
                TracePayload::Deliver { seq: 7, flow: 1 },
            ),
        );
        fr.complete(7);
        let j = fr.journey(7).unwrap();
        assert_eq!(j.len(), 3);
        assert!(j.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(fr.is_tracked(7));
        assert_eq!(fr.stats().tracked, 1);
    }

    #[test]
    fn untracked_records_are_dropped() {
        let mut fr = FlightRecorder::new(4);
        fr.record(99, admit_ev(0, 0, 99));
        assert_eq!(fr.packets(), 0);
        assert_eq!(fr.events(), 0);
    }

    #[test]
    fn evicts_oldest_finished_journey_when_full() {
        let mut fr = FlightRecorder::new(2);
        assert!(fr.admit(1, admit_ev(0, 0, 1)));
        fr.complete(1);
        assert!(fr.admit(2, admit_ev(1, 0, 2)));
        fr.complete(2);
        // Cap reached; the next admission evicts seq 1 (oldest finished).
        assert!(fr.admit(3, admit_ev(2, 0, 3)));
        assert!(fr.journey(1).is_none());
        assert!(fr.journey(2).is_some());
        assert!(fr.journey(3).is_some());
        let st = fr.stats();
        assert_eq!(st.evicted, 1);
        assert_eq!(st.stride, 1, "eviction sufficed; no sampling");
    }

    #[test]
    fn samples_by_doubling_stride_when_nothing_evictable() {
        let mut fr = FlightRecorder::new(2);
        assert!(fr.admit(1, admit_ev(0, 0, 1)));
        assert!(fr.admit(2, admit_ev(1, 0, 2)));
        // Both journeys in flight: cap hit, nothing evictable -> stride 2,
        // packet skipped.
        assert!(!fr.admit(3, admit_ev(2, 0, 3)));
        assert_eq!(fr.stats().stride, 2);
        assert_eq!(fr.stats().skipped, 1);
        // Next offer lands on an odd slot and is sampled away.
        assert!(!fr.admit(4, admit_ev(3, 0, 4)));
        assert_eq!(fr.stats().skipped, 2);
        // Finish one journey; the next even slot admits again.
        fr.complete(1);
        assert!(fr.admit(5, admit_ev(4, 0, 5)));
        assert_eq!(fr.stats().evicted, 1);
    }

    #[test]
    fn pool_recycles_event_buffers() {
        let mut fr = FlightRecorder::new(1);
        assert!(fr.admit(1, admit_ev(0, 0, 1)));
        fr.complete(1);
        assert!(fr.admit(2, admit_ev(1, 0, 2)));
        // Seq 1's buffer was recycled; the new journey holds only its own
        // admit record.
        assert_eq!(fr.journey(2).unwrap().len(), 1);
    }

    #[test]
    fn jsonl_export_is_time_ordered_and_parseable() {
        let mut fr = FlightRecorder::new(8);
        fr.admit(2, admit_ev(5, 0, 2));
        fr.admit(1, admit_ev(3, 0, 1));
        fr.record(
            1,
            ev(
                9,
                1,
                TraceKind::Deliver,
                TracePayload::Deliver { seq: 1, flow: 1 },
            ),
        );
        fr.record(
            2,
            ev(
                7,
                1,
                TraceKind::Deliver,
                TracePayload::Deliver { seq: 2, flow: 1 },
            ),
        );
        let jsonl = fr.to_jsonl();
        let parsed = ezflow_sim::TraceRing::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.len(), 4);
        assert!(parsed.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn group_and_summarize_reconstruct_a_delivery_and_a_drop() {
        let events = vec![
            admit_ev(0, 0, 1),
            ev(
                0,
                0,
                TraceKind::Enqueue,
                TracePayload::Enqueue {
                    seq: 1,
                    flow: 1,
                    occupancy: 1,
                    cap: 50,
                },
            ),
            ev(
                1,
                0,
                TraceKind::Attempt,
                TracePayload::Attempt {
                    seq: 1,
                    attempt: 0,
                    cw: 32,
                    slots: 9,
                },
            ),
            ev(
                2,
                1,
                TraceKind::Enqueue,
                TracePayload::Enqueue {
                    seq: 1,
                    flow: 1,
                    occupancy: 1,
                    cap: 50,
                },
            ),
            ev(
                3,
                1,
                TraceKind::Attempt,
                TracePayload::Attempt {
                    seq: 1,
                    attempt: 0,
                    cw: 32,
                    slots: 2,
                },
            ),
            ev(
                4,
                2,
                TraceKind::Deliver,
                TracePayload::Deliver { seq: 1, flow: 1 },
            ),
            admit_ev(1, 3, 9),
            ev(
                5,
                3,
                TraceKind::Drop,
                TracePayload::Drop {
                    cause: DropCause::RetryLimit,
                    seq: 9,
                },
            ),
        ];
        let grouped = group_journeys(&events);
        assert_eq!(grouped.len(), 2);

        let ok = summarize_journey(1, &grouped[&1]);
        assert_eq!(ok.hops, vec![0, 1]);
        assert_eq!(ok.attempts, 2);
        assert_eq!(ok.delivered, Some((t(4), 2)));
        assert_eq!(ok.dropped, None);
        assert_eq!(ok.latency_us(), Some(4));

        let bad = summarize_journey(9, &grouped[&9]);
        assert_eq!(bad.delivered, None);
        assert_eq!(bad.dropped, Some((t(5), 3, DropCause::RetryLimit)));
        assert_eq!(bad.latency_us(), None);
    }
}
