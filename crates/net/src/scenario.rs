//! Declarative scenario specs — workloads as data, not code.
//!
//! A [`ScenarioSpec`] is a JSON document (read through the in-tree
//! [`ezflow_sim::json`] kernel — no external parser) that describes a
//! complete experiment: a topology (explicit positions or a generative
//! family), a traffic mix (CBR, windowed, bursty on-off), a loss
//! schedule (uniform, per-link, Gilbert-Elliott, link churn) and sweep
//! axes (queue capacity, seed, controller). [`ScenarioSpec::compile`]
//! lowers one into the same [`Topology`] the hand-built constructors in
//! [`crate::topo`] produce — provably so: the committed spec files under
//! `scenarios/` are pinned byte-identical to the constructors by test.
//!
//! ## Determinism
//!
//! Everything generative draws from [`SimRng`] streams derived from the
//! spec's own seeds, never from ambient state: random-geometric
//! placement uses `SimRng::with_stream(topology.seed, PLACEMENT_STREAM)`,
//! traffic-source selection `SOURCE_STREAM` of the same seed. Compiling
//! the same document twice therefore yields identical positions, routes
//! and flows, and the sweep's *run* seeds stay an independent axis: they
//! reseed the simulation, not the layout.
//!
//! ## Schema (informal)
//!
//! ```json
//! {
//!   "name": "...", "description": "...",
//!   "duration_secs": 60, "seed": 1, "queue_cap": 50,
//!   "topology": {"kind": "explicit" | "chain" | "grid" | "random_geometric", ...},
//!   "flows": [{"path": [..], "rate_bps": .., "payload_bytes": ..,
//!              "start_secs": .., "stop_secs": .., "transport": {"kind": ..}}],
//!   "traffic": {"flows": .., "rate_bps": .., "payload_bytes": ..,
//!               "start_secs": .., "stop_secs": .., "mix": [{"weight": .., "transport": ..}]},
//!   "loss": {"kind": "ideal" | "uniform" | "custom", ...},
//!   "sweep": {"queue_caps": [..], "seeds": [..], "controllers": ["802.11", ..]}
//! }
//! ```
//!
//! Explicit `flows` and a generative `traffic` mix are mutually
//! exclusive; the mix needs gateways, so it requires a
//! `random_geometric` topology. See DESIGN.md §9 for the full schema.

use ezflow_phy::{ChannelConfig, ChurnWindow, GilbertElliott, LossModel, Position};
use ezflow_sim::json::{JsonError, JsonValue};
use ezflow_sim::{Duration, SimRng, Time};

use crate::routing::GatewayRoutes;
use crate::topo::{FlowSpec, Topology};
use crate::traffic::Transport;

/// Stream tag for random-geometric node placement.
const PLACEMENT_STREAM: u64 = 0x746f_706f; // "topo"
/// Stream tag for traffic-source selection.
const SOURCE_STREAM: u64 = 0x7472_6166; // "traf"

/// Why a scenario document was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// Not valid JSON at all.
    Parse {
        /// 1-based line of the failure.
        line: usize,
        /// 1-based column of the failure.
        col: usize,
        /// The parser's message.
        message: String,
    },
    /// Valid JSON, but not a valid scenario; `path` names the offending
    /// field (e.g. `flows[2].transport.kind`).
    Field {
        /// Dotted field path into the document.
        path: String,
        /// What is wrong with it.
        message: String,
    },
    /// The compiled topology failed [`Topology::validate`].
    Spec(crate::builder::SpecError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse { line, col, message } => {
                write!(
                    f,
                    "scenario parse error at line {line}, column {col}: {message}"
                )
            }
            ScenarioError::Field { path, message } => {
                write!(f, "scenario error at `{path}`: {message}")
            }
            ScenarioError::Spec(e) => write!(f, "scenario compiles to an invalid network: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<crate::builder::SpecError> for ScenarioError {
    fn from(e: crate::builder::SpecError) -> Self {
        ScenarioError::Spec(e)
    }
}

/// How the node layout is produced.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// Positions given verbatim (meters).
    Explicit {
        /// The node positions.
        positions: Vec<Position>,
    },
    /// A K-hop line, nodes every `spacing` meters (see
    /// [`crate::topo::chain`]).
    Chain {
        /// Number of hops (nodes = hops + 1).
        hops: usize,
        /// Inter-node spacing, meters.
        spacing: f64,
    },
    /// A `rows × cols` lattice (see [`crate::topo::grid`]).
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Lattice spacing, meters.
        spacing: f64,
    },
    /// Seeded uniform placement on a `width × height` rectangle, with
    /// `gateways` drain nodes pinned on a deterministic sub-lattice.
    /// Node ids `0..gateways` are the gateways.
    RandomGeometric {
        /// Total node count (gateways included).
        nodes: usize,
        /// Area width, meters.
        width: f64,
        /// Area height, meters.
        height: f64,
        /// Number of gateway nodes.
        gateways: usize,
        /// Placement seed (independent of the run seed).
        seed: u64,
    },
}

/// One weighted entry of a generative traffic mix.
#[derive(Clone, Debug, PartialEq)]
pub struct MixEntry {
    /// Relative weight (flows are assigned round-robin by weight).
    pub weight: u32,
    /// The transport template.
    pub transport: Transport,
}

/// A generative traffic mix: `flows` sources picked deterministically
/// among non-gateway nodes, each routed to its nearest gateway.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficMix {
    /// Number of flows to generate.
    pub flows: usize,
    /// Application rate per flow, bits/s.
    pub rate_bps: u64,
    /// Payload bytes per packet.
    pub payload_bytes: u32,
    /// Generation start.
    pub start: Time,
    /// Generation stop.
    pub stop: Time,
    /// Weighted transport templates, assigned cyclically.
    pub mix: Vec<MixEntry>,
}

/// A directed or symmetric per-link Bernoulli override.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkPer {
    /// Transmitting node (or one end if symmetric).
    pub a: usize,
    /// Receiving node (or the other end).
    pub b: usize,
    /// Loss probability.
    pub per: f64,
    /// Apply in both directions.
    pub symmetric: bool,
}

/// A per-link Gilbert-Elliott override.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkBurst {
    /// Transmitting node (or one end if symmetric).
    pub a: usize,
    /// Receiving node (or the other end).
    pub b: usize,
    /// The burst parameters.
    pub ge: GilbertElliott,
    /// Apply in both directions.
    pub symmetric: bool,
}

/// A per-link deterministic up/down schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkChurn {
    /// Transmitting node (or one end if symmetric).
    pub a: usize,
    /// Receiving node (or the other end).
    pub b: usize,
    /// The schedule.
    pub window: ChurnWindow,
    /// Apply in both directions.
    pub symmetric: bool,
}

/// The loss schedule of a scenario, compiled onto [`LossModel`].
#[derive(Clone, Debug, PartialEq, Default)]
pub struct LossSpec {
    /// Bernoulli loss on every link not overridden.
    pub default_per: f64,
    /// Per-link Bernoulli overrides.
    pub links: Vec<LinkPer>,
    /// Global Gilbert-Elliott overlay.
    pub burst: Option<GilbertElliott>,
    /// Per-link Gilbert-Elliott overrides.
    pub burst_links: Vec<LinkBurst>,
    /// Per-link up/down schedules.
    pub churn: Vec<LinkChurn>,
}

impl LossSpec {
    /// Lowers the schedule onto a [`LossModel`].
    pub fn compile(&self) -> LossModel {
        let mut m = if self.default_per > 0.0 {
            LossModel::uniform(self.default_per)
        } else {
            LossModel::ideal()
        };
        for l in &self.links {
            if l.symmetric {
                m.set_link_symmetric(l.a, l.b, l.per);
            } else {
                m.set_link(l.a, l.b, l.per);
            }
        }
        if let Some(ge) = self.burst {
            m = m.with_burst(ge);
        }
        for l in &self.burst_links {
            if l.symmetric {
                m.set_link_burst_symmetric(l.a, l.b, l.ge);
            } else {
                m.set_link_burst(l.a, l.b, l.ge);
            }
        }
        for l in &self.churn {
            if l.symmetric {
                m.set_link_churn_symmetric(l.a, l.b, l.window);
            } else {
                m.set_link_churn(l.a, l.b, l.window);
            }
        }
        m
    }
}

/// The sweep axes: one spec file expands into the cartesian product.
/// Empty axes default to the spec's own base values (a single point).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SweepSpec {
    /// Interface-queue capacities to sweep.
    pub queue_caps: Vec<usize>,
    /// Run seeds to sweep.
    pub seeds: Vec<u64>,
    /// Controller names (resolved by the harness, e.g. `"802.11"`,
    /// `"EZ-flow"`); the net layer treats them as opaque strings.
    pub controllers: Vec<String>,
}

/// A parsed scenario document.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (also the base of every sweep-point label).
    pub name: String,
    /// One-line description (shown by `experiments --list`).
    pub description: String,
    /// Nominal run length, seconds.
    pub duration_secs: f64,
    /// Base run seed (swept by `sweep.seeds`).
    pub seed: u64,
    /// Base interface-queue capacity (swept by `sweep.queue_caps`).
    pub queue_cap: usize,
    /// The layout.
    pub topology: TopologySpec,
    /// Explicit flows (mutually exclusive with `traffic`).
    pub flows: Vec<FlowSpec>,
    /// Generative traffic mix (requires a `random_geometric` topology).
    pub traffic: Option<TrafficMix>,
    /// The loss schedule.
    pub loss: LossSpec,
    /// The sweep axes.
    pub sweep: SweepSpec,
}

/// One expanded run of a scenario's sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Unique label, `{name}/{controller}[/qc{cap}][/seed{seed}]` with
    /// path-hostile characters stripped from the controller.
    pub label: String,
    /// Interface-queue capacity of this run.
    pub queue_cap: usize,
    /// Run seed of this run.
    pub seed: u64,
    /// Controller name (opaque to the net layer).
    pub controller: String,
}

/// The result of compiling a [`ScenarioSpec`]: a runnable topology plus
/// the expanded job matrix.
#[derive(Clone, Debug)]
pub struct CompiledScenario {
    /// Scenario name.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The compiled (validated) topology.
    pub topology: Topology,
    /// Nominal run length.
    pub until: Time,
    /// The expanded sweep, in controller-major order.
    pub points: Vec<SweepPoint>,
}

impl ScenarioSpec {
    /// Parses a JSON document into a spec, with line/column diagnostics
    /// for syntax errors and field-path diagnostics for schema errors.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let v = JsonValue::parse(text).map_err(|e: JsonError| {
            let (line, col) = e.line_col(text);
            ScenarioError::Parse {
                line,
                col,
                message: e.message,
            }
        })?;
        ScenarioSpec::from_json(&v)
    }

    /// Builds a spec from an already-parsed JSON value.
    pub fn from_json(v: &JsonValue) -> Result<ScenarioSpec, ScenarioError> {
        let name = req_str(v, "", "name")?;
        let description = opt_str(v, "", "description", "")?;
        let duration_secs = req_f64(v, "", "duration_secs")?;
        if !(duration_secs.is_finite() && duration_secs > 0.0) {
            return Err(field("duration_secs", "must be a positive number"));
        }
        let seed = opt_u64(v, "", "seed", 1)?;
        let queue_cap = opt_u64(v, "", "queue_cap", 50)? as usize;
        let topology = parse_topology(req(v, "", "topology")?)?;
        let duration = secs_to_time("duration_secs", duration_secs)?;

        let mut flows = Vec::new();
        if let Some(fv) = v.get("flows") {
            let arr = fv
                .as_array()
                .ok_or_else(|| field("flows", "must be an array"))?;
            for (i, f) in arr.iter().enumerate() {
                flows.push(parse_flow(f, i)?);
            }
        }
        let traffic = match v.get("traffic") {
            Some(t) => Some(parse_traffic(t)?),
            None => None,
        };
        if !flows.is_empty() && traffic.is_some() {
            return Err(field("traffic", "mutually exclusive with explicit `flows`"));
        }
        let loss = match v.get("loss") {
            Some(l) => parse_loss(l)?,
            None => LossSpec::default(),
        };
        let sweep = match v.get("sweep") {
            Some(s) => parse_sweep(s)?,
            None => SweepSpec::default(),
        };
        let _ = duration; // range-checked above; compile re-derives it
        Ok(ScenarioSpec {
            name,
            description,
            duration_secs,
            seed,
            queue_cap,
            topology,
            flows,
            traffic,
            loss,
            sweep,
        })
    }

    /// The canonical JSON form of the spec. `parse(to_json().to_pretty())`
    /// round-trips to an equal spec (pinned by proptest).
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("name", JsonValue::str(&self.name)),
            ("description", JsonValue::str(&self.description)),
            ("duration_secs", JsonValue::from(self.duration_secs)),
            ("seed", JsonValue::from(self.seed)),
            ("queue_cap", JsonValue::from(self.queue_cap)),
            ("topology", topology_json(&self.topology)),
        ];
        if !self.flows.is_empty() {
            fields.push((
                "flows",
                JsonValue::Array(self.flows.iter().map(flow_json).collect()),
            ));
        }
        if let Some(t) = &self.traffic {
            fields.push(("traffic", traffic_json(t)));
        }
        fields.push(("loss", loss_json(&self.loss)));
        fields.push(("sweep", sweep_json(&self.sweep)));
        JsonValue::obj(fields)
    }

    /// Re-expresses a hand-built [`Topology`] as a spec with explicit
    /// positions and flows — the generator behind `experiments
    /// --emit-spec`, and the bridge that lets every legacy constructor
    /// be pinned byte-identical against its spec file.
    pub fn from_topology(
        topo: &Topology,
        description: &str,
        duration: Time,
        seed: u64,
        controllers: &[&str],
    ) -> ScenarioSpec {
        ScenarioSpec {
            name: topo.name.clone(),
            description: description.to_string(),
            duration_secs: time_to_secs(duration),
            seed,
            queue_cap: 50,
            topology: TopologySpec::Explicit {
                positions: topo.positions.clone(),
            },
            flows: topo.flows.clone(),
            traffic: None,
            loss: loss_spec_of(&topo.loss),
            sweep: SweepSpec {
                queue_caps: Vec::new(),
                seeds: Vec::new(),
                controllers: controllers.iter().map(|c| c.to_string()).collect(),
            },
        }
    }

    /// Compiles the spec: generates the layout and flows, lowers the
    /// loss schedule, validates the result and expands the sweep.
    pub fn compile(&self) -> Result<CompiledScenario, ScenarioError> {
        let until = secs_to_time("duration_secs", self.duration_secs)?;
        let positions = self.build_positions()?;
        let flows = self.build_flows(&positions, until)?;
        let topology = Topology {
            name: self.name.clone(),
            positions,
            loss: self.loss.compile(),
            flows,
        };
        crate::builder::NetworkSpec::from_topology(&topology, self.seed).validate()?;
        Ok(CompiledScenario {
            name: self.name.clone(),
            description: self.description.clone(),
            topology,
            until,
            points: self.expand_sweep(),
        })
    }

    fn build_positions(&self) -> Result<Vec<Position>, ScenarioError> {
        match &self.topology {
            TopologySpec::Explicit { positions } => Ok(positions.clone()),
            TopologySpec::Chain { hops, spacing } => {
                if *hops == 0 {
                    return Err(field("topology.hops", "must be at least 1"));
                }
                Ok(ezflow_phy::geom::line_positions(hops + 1, *spacing))
            }
            TopologySpec::Grid {
                rows,
                cols,
                spacing,
            } => {
                if *rows == 0 || *cols < 2 {
                    return Err(field(
                        "topology",
                        "grid needs rows >= 1 and cols >= 2 (each row carries a flow)",
                    ));
                }
                let mut positions = Vec::with_capacity(rows * cols);
                for r in 0..*rows {
                    for c in 0..*cols {
                        positions.push(Position::new(c as f64 * spacing, r as f64 * spacing));
                    }
                }
                Ok(positions)
            }
            TopologySpec::RandomGeometric {
                nodes,
                width,
                height,
                gateways,
                seed,
            } => {
                if *gateways == 0 || *gateways >= *nodes {
                    return Err(field(
                        "topology.gateways",
                        "need at least one gateway and at least one non-gateway node",
                    ));
                }
                // Gateways sit on a deterministic sub-lattice (cell
                // centers), spreading the drains across the area; the
                // rest land uniformly from the placement stream.
                let gcols = (*gateways as f64).sqrt().ceil() as usize;
                let grows = gateways.div_ceil(gcols);
                let mut positions = Vec::with_capacity(*nodes);
                for g in 0..*gateways {
                    let (c, r) = (g % gcols, g / gcols);
                    positions.push(Position::new(
                        (c as f64 + 0.5) * width / gcols as f64,
                        (r as f64 + 0.5) * height / grows as f64,
                    ));
                }
                let mut rng = SimRng::with_stream(*seed, PLACEMENT_STREAM);
                for _ in *gateways..*nodes {
                    let x = rng.gen_f64() * width;
                    let y = rng.gen_f64() * height;
                    positions.push(Position::new(x, y));
                }
                Ok(positions)
            }
        }
    }

    fn build_flows(
        &self,
        positions: &[Position],
        until: Time,
    ) -> Result<Vec<FlowSpec>, ScenarioError> {
        if !self.flows.is_empty() {
            return Ok(self.flows.clone());
        }
        if let Some(mix) = &self.traffic {
            return self.build_mix_flows(mix, positions);
        }
        // No explicit flows, no mix: the generative families fall back
        // to their constructors' built-in workloads.
        match &self.topology {
            TopologySpec::Chain { hops, .. } => Ok(vec![FlowSpec::saturating(
                0,
                (0..=*hops).collect(),
                Time::ZERO,
                until,
            )]),
            TopologySpec::Grid { rows, cols, .. } => Ok((0..*rows)
                .map(|r| {
                    let path: Vec<usize> = (0..*cols).map(|c| r * cols + c).collect();
                    FlowSpec::saturating(r as u32, path, Time::ZERO, until)
                })
                .collect()),
            _ => Err(field(
                "flows",
                "explicit topologies need explicit flows (or a traffic mix on random_geometric)",
            )),
        }
    }

    fn build_mix_flows(
        &self,
        mix: &TrafficMix,
        positions: &[Position],
    ) -> Result<Vec<FlowSpec>, ScenarioError> {
        let TopologySpec::RandomGeometric { gateways, seed, .. } = &self.topology else {
            return Err(field(
                "traffic",
                "a traffic mix requires a random_geometric topology (it routes to gateways)",
            ));
        };
        if mix.flows == 0 {
            return Err(field("traffic.flows", "must generate at least one flow"));
        }
        if mix.mix.is_empty() {
            return Err(field("traffic.mix", "needs at least one transport entry"));
        }
        let total_weight: u32 = mix.mix.iter().map(|m| m.weight).sum();
        if total_weight == 0 {
            return Err(field("traffic.mix", "weights must not all be zero"));
        }
        // Decode graph + nearest-gateway trees. The connectivity check:
        // a generated mesh where some node cannot drain is a spec bug,
        // reported with the offending node rather than silently routed
        // around.
        let tx_range = ChannelConfig::default().tx_range;
        let adj = decode_adjacency(positions, tx_range);
        let gw: Vec<usize> = (0..*gateways).collect();
        let routes = GatewayRoutes::compute(&adj, &gw);
        let stranded = routes.unreachable();
        if let Some(&node) = stranded.first() {
            return Err(field(
                "topology",
                &format!(
                    "not connected: node {node} (of {} stranded) cannot reach any gateway — \
                     densify (more nodes / smaller area) or reseed",
                    stranded.len()
                ),
            ));
        }
        // Eligible sources: every non-gateway node, shuffled by the
        // source stream (partial Fisher-Yates), so source choice is a
        // pure function of the topology seed.
        let mut eligible: Vec<usize> = (*gateways..positions.len()).collect();
        if mix.flows > eligible.len() {
            return Err(field(
                "traffic.flows",
                &format!("only {} non-gateway nodes available", eligible.len()),
            ));
        }
        let mut rng = SimRng::with_stream(*seed, SOURCE_STREAM);
        for i in 0..mix.flows {
            let j = i + rng.gen_range((eligible.len() - i) as u32) as usize;
            eligible.swap(i, j);
        }
        let mut flows = Vec::with_capacity(mix.flows);
        for (i, &src) in eligible[..mix.flows].iter().enumerate() {
            let path = routes.path_from(src).expect("checked connected above");
            // Transport kinds cycle by weight: flow i takes the entry
            // whose cumulative weight bucket contains i mod total.
            let mut slot = (i as u32) % total_weight;
            let entry = mix
                .mix
                .iter()
                .find(|m| {
                    if slot < m.weight {
                        true
                    } else {
                        slot -= m.weight;
                        false
                    }
                })
                .expect("total weight covers every slot");
            flows.push(FlowSpec {
                id: i as u32,
                path,
                rate_bps: mix.rate_bps,
                payload_bytes: mix.payload_bytes,
                start: mix.start,
                stop: mix.stop,
                transport: entry.transport,
            });
        }
        Ok(flows)
    }

    fn expand_sweep(&self) -> Vec<SweepPoint> {
        let caps = if self.sweep.queue_caps.is_empty() {
            vec![self.queue_cap]
        } else {
            self.sweep.queue_caps.clone()
        };
        let seeds = if self.sweep.seeds.is_empty() {
            vec![self.seed]
        } else {
            self.sweep.seeds.clone()
        };
        let controllers = if self.sweep.controllers.is_empty() {
            vec!["802.11".to_string()]
        } else {
            self.sweep.controllers.clone()
        };
        let mut points = Vec::with_capacity(controllers.len() * caps.len() * seeds.len());
        for c in &controllers {
            for &cap in &caps {
                for &seed in &seeds {
                    let mut label = format!("{}/{}", self.name, slug(c));
                    if caps.len() > 1 {
                        label.push_str(&format!("/qc{cap}"));
                    }
                    if seeds.len() > 1 {
                        label.push_str(&format!("/seed{seed}"));
                    }
                    points.push(SweepPoint {
                        label,
                        queue_cap: cap,
                        seed,
                        controller: c.clone(),
                    });
                }
            }
        }
        points
    }
}

/// The decode-graph adjacency of a layout (symmetric by construction).
pub fn decode_adjacency(positions: &[Position], tx_range: f64) -> Vec<Vec<usize>> {
    let n = positions.len();
    let range_sq = tx_range * tx_range;
    let mut adj = vec![Vec::new(); n];
    for a in 0..n {
        for b in (a + 1)..n {
            if positions[a].distance_sq(&positions[b]) <= range_sq {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
    }
    adj
}

/// File-label slug of a controller name (same scrub the bench layer
/// applies to algorithm names).
fn slug(name: &str) -> String {
    name.replace(['.', ' ', '(', ')'], "")
}

// ---- parse helpers -------------------------------------------------------

fn field(path: &str, message: &str) -> ScenarioError {
    ScenarioError::Field {
        path: path.to_string(),
        message: message.to_string(),
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn req<'a>(v: &'a JsonValue, path: &str, key: &str) -> Result<&'a JsonValue, ScenarioError> {
    v.get(key)
        .ok_or_else(|| field(&join(path, key), "missing required field"))
}

fn req_str(v: &JsonValue, path: &str, key: &str) -> Result<String, ScenarioError> {
    req(v, path, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| field(&join(path, key), "must be a string"))
}

fn opt_str(v: &JsonValue, path: &str, key: &str, default: &str) -> Result<String, ScenarioError> {
    match v.get(key) {
        None => Ok(default.to_string()),
        Some(s) => s
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| field(&join(path, key), "must be a string")),
    }
}

fn req_f64(v: &JsonValue, path: &str, key: &str) -> Result<f64, ScenarioError> {
    req(v, path, key)?
        .as_f64()
        .ok_or_else(|| field(&join(path, key), "must be a number"))
}

fn req_u64(v: &JsonValue, path: &str, key: &str) -> Result<u64, ScenarioError> {
    req(v, path, key)?
        .as_u64()
        .ok_or_else(|| field(&join(path, key), "must be a non-negative integer"))
}

fn opt_u64(v: &JsonValue, path: &str, key: &str, default: u64) -> Result<u64, ScenarioError> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n
            .as_u64()
            .ok_or_else(|| field(&join(path, key), "must be a non-negative integer")),
    }
}

fn opt_f64(v: &JsonValue, path: &str, key: &str, default: f64) -> Result<f64, ScenarioError> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n
            .as_f64()
            .ok_or_else(|| field(&join(path, key), "must be a number")),
    }
}

fn opt_bool(v: &JsonValue, path: &str, key: &str, default: bool) -> Result<bool, ScenarioError> {
    match v.get(key) {
        None => Ok(default),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| field(&join(path, key), "must be a boolean")),
    }
}

/// Seconds (possibly fractional) to a microsecond [`Time`]. Exact for
/// any whole-microsecond duration below ~2·10⁹ s: the f64 relative
/// error stays under half a microsecond, and the round recovers it.
fn secs_to_time(path: &str, secs: f64) -> Result<Time, ScenarioError> {
    if !(secs.is_finite() && secs >= 0.0) {
        return Err(field(path, "must be a non-negative number of seconds"));
    }
    Ok(Time::from_micros((secs * 1e6).round() as u64))
}

fn secs_to_duration(path: &str, secs: f64) -> Result<Duration, ScenarioError> {
    Ok(Duration::from_micros(secs_to_time(path, secs)?.as_micros()))
}

fn time_to_secs(t: Time) -> f64 {
    t.as_micros() as f64 / 1e6
}

fn duration_to_secs(d: Duration) -> f64 {
    d.as_micros() as f64 / 1e6
}

fn parse_topology(v: &JsonValue) -> Result<TopologySpec, ScenarioError> {
    let p = "topology";
    let kind = req_str(v, p, "kind")?;
    match kind.as_str() {
        "explicit" => {
            let arr = req(v, p, "positions")?
                .as_array()
                .ok_or_else(|| field("topology.positions", "must be an array of [x, y] pairs"))?;
            let mut positions = Vec::with_capacity(arr.len());
            for (i, pv) in arr.iter().enumerate() {
                let pair = pv.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                    field(
                        &format!("topology.positions[{i}]"),
                        "must be an [x, y] pair",
                    )
                })?;
                let x = pair[0].as_f64().ok_or_else(|| {
                    field(&format!("topology.positions[{i}][0]"), "must be a number")
                })?;
                let y = pair[1].as_f64().ok_or_else(|| {
                    field(&format!("topology.positions[{i}][1]"), "must be a number")
                })?;
                positions.push(Position::new(x, y));
            }
            Ok(TopologySpec::Explicit { positions })
        }
        "chain" => Ok(TopologySpec::Chain {
            hops: req_u64(v, p, "hops")? as usize,
            spacing: opt_f64(v, p, "spacing", crate::topo::SPACING)?,
        }),
        "grid" => Ok(TopologySpec::Grid {
            rows: req_u64(v, p, "rows")? as usize,
            cols: req_u64(v, p, "cols")? as usize,
            spacing: req_f64(v, p, "spacing")?,
        }),
        "random_geometric" => Ok(TopologySpec::RandomGeometric {
            nodes: req_u64(v, p, "nodes")? as usize,
            width: req_f64(v, p, "width")?,
            height: req_f64(v, p, "height")?,
            gateways: req_u64(v, p, "gateways")? as usize,
            seed: req_u64(v, p, "seed")?,
        }),
        other => Err(field(
            "topology.kind",
            &format!(
                "unknown kind '{other}' (expected explicit | chain | grid | random_geometric)"
            ),
        )),
    }
}

fn parse_transport(v: &JsonValue, path: &str) -> Result<Transport, ScenarioError> {
    let kind = req_str(v, path, "kind")?;
    match kind.as_str() {
        "cbr" => Ok(Transport::Cbr),
        "windowed" => Ok(Transport::Windowed {
            window: req_u64(v, path, "window")? as usize,
            ack_payload: opt_u64(v, path, "ack_payload", 40)? as u32,
        }),
        "onoff" => Ok(Transport::OnOff {
            mean_on: secs_to_duration(
                &join(path, "mean_on_secs"),
                req_f64(v, path, "mean_on_secs")?,
            )?,
            mean_off: secs_to_duration(
                &join(path, "mean_off_secs"),
                req_f64(v, path, "mean_off_secs")?,
            )?,
            alpha: req_f64(v, path, "alpha")?,
        }),
        other => Err(field(
            &join(path, "kind"),
            &format!("unknown transport '{other}' (expected cbr | windowed | onoff)"),
        )),
    }
}

fn parse_flow(v: &JsonValue, i: usize) -> Result<FlowSpec, ScenarioError> {
    let p = format!("flows[{i}]");
    let path_arr = req(v, &p, "path")?
        .as_array()
        .ok_or_else(|| field(&join(&p, "path"), "must be an array of node ids"))?;
    let mut path = Vec::with_capacity(path_arr.len());
    for (j, nv) in path_arr.iter().enumerate() {
        path.push(
            nv.as_u64()
                .ok_or_else(|| field(&format!("{p}.path[{j}]"), "must be a non-negative integer"))?
                as usize,
        );
    }
    let transport = match v.get("transport") {
        None => Transport::Cbr,
        Some(t) => parse_transport(t, &join(&p, "transport"))?,
    };
    Ok(FlowSpec {
        id: i as u32,
        path,
        rate_bps: opt_u64(v, &p, "rate_bps", 2_000_000)?,
        payload_bytes: opt_u64(v, &p, "payload_bytes", 1000)? as u32,
        start: secs_to_time(&join(&p, "start_secs"), req_f64(v, &p, "start_secs")?)?,
        stop: secs_to_time(&join(&p, "stop_secs"), req_f64(v, &p, "stop_secs")?)?,
        transport,
    })
}

fn parse_traffic(v: &JsonValue) -> Result<TrafficMix, ScenarioError> {
    let p = "traffic";
    let mix_arr = req(v, p, "mix")?
        .as_array()
        .ok_or_else(|| field("traffic.mix", "must be an array"))?;
    let mut mix = Vec::with_capacity(mix_arr.len());
    for (i, m) in mix_arr.iter().enumerate() {
        let mp = format!("traffic.mix[{i}]");
        mix.push(MixEntry {
            weight: opt_u64(m, &mp, "weight", 1)? as u32,
            transport: parse_transport(req(m, &mp, "transport")?, &join(&mp, "transport"))?,
        });
    }
    Ok(TrafficMix {
        flows: req_u64(v, p, "flows")? as usize,
        rate_bps: req_u64(v, p, "rate_bps")?,
        payload_bytes: opt_u64(v, p, "payload_bytes", 1000)? as u32,
        start: secs_to_time("traffic.start_secs", req_f64(v, p, "start_secs")?)?,
        stop: secs_to_time("traffic.stop_secs", req_f64(v, p, "stop_secs")?)?,
        mix,
    })
}

fn parse_ge(v: &JsonValue, path: &str) -> Result<GilbertElliott, ScenarioError> {
    Ok(GilbertElliott {
        p_g2b: req_f64(v, path, "p_g2b")?,
        p_b2g: req_f64(v, path, "p_b2g")?,
        p_good: opt_f64(v, path, "p_good", 0.0)?,
        p_bad: req_f64(v, path, "p_bad")?,
    })
}

fn parse_loss(v: &JsonValue) -> Result<LossSpec, ScenarioError> {
    let kind = req_str(v, "loss", "kind")?;
    match kind.as_str() {
        "ideal" => Ok(LossSpec::default()),
        "uniform" => {
            let per = req_f64(v, "loss", "per")?;
            if !(0.0..=1.0).contains(&per) {
                return Err(field("loss.per", "must be a probability in [0, 1]"));
            }
            Ok(LossSpec {
                default_per: per,
                ..LossSpec::default()
            })
        }
        "custom" => {
            let default_per = opt_f64(v, "loss", "default_per", 0.0)?;
            if !(0.0..=1.0).contains(&default_per) {
                return Err(field("loss.default_per", "must be a probability in [0, 1]"));
            }
            let mut links = Vec::new();
            if let Some(ls) = v.get("links") {
                let arr = ls
                    .as_array()
                    .ok_or_else(|| field("loss.links", "must be an array"))?;
                for (i, l) in arr.iter().enumerate() {
                    let lp = format!("loss.links[{i}]");
                    let per = req_f64(l, &lp, "per")?;
                    if !(0.0..=1.0).contains(&per) {
                        return Err(field(&join(&lp, "per"), "must be a probability in [0, 1]"));
                    }
                    links.push(LinkPer {
                        a: req_u64(l, &lp, "a")? as usize,
                        b: req_u64(l, &lp, "b")? as usize,
                        per,
                        symmetric: opt_bool(l, &lp, "symmetric", true)?,
                    });
                }
            }
            let burst = match v.get("burst") {
                None => None,
                Some(b) => Some(parse_ge(b, "loss.burst")?),
            };
            let mut burst_links = Vec::new();
            if let Some(ls) = v.get("burst_links") {
                let arr = ls
                    .as_array()
                    .ok_or_else(|| field("loss.burst_links", "must be an array"))?;
                for (i, l) in arr.iter().enumerate() {
                    let lp = format!("loss.burst_links[{i}]");
                    burst_links.push(LinkBurst {
                        a: req_u64(l, &lp, "a")? as usize,
                        b: req_u64(l, &lp, "b")? as usize,
                        ge: parse_ge(l, &lp)?,
                        symmetric: opt_bool(l, &lp, "symmetric", true)?,
                    });
                }
            }
            let mut churn = Vec::new();
            if let Some(ls) = v.get("churn") {
                let arr = ls
                    .as_array()
                    .ok_or_else(|| field("loss.churn", "must be an array"))?;
                for (i, l) in arr.iter().enumerate() {
                    let lp = format!("loss.churn[{i}]");
                    let up = secs_to_duration(&join(&lp, "up_secs"), req_f64(l, &lp, "up_secs")?)?;
                    let down =
                        secs_to_duration(&join(&lp, "down_secs"), req_f64(l, &lp, "down_secs")?)?;
                    if up.as_micros() + down.as_micros() == 0 {
                        return Err(field(&lp, "churn cycle must be nonzero"));
                    }
                    let phase = secs_to_duration(
                        &join(&lp, "phase_secs"),
                        opt_f64(l, &lp, "phase_secs", 0.0)?,
                    )?;
                    churn.push(LinkChurn {
                        a: req_u64(l, &lp, "a")? as usize,
                        b: req_u64(l, &lp, "b")? as usize,
                        window: ChurnWindow::new(up, down, phase),
                        symmetric: opt_bool(l, &lp, "symmetric", true)?,
                    });
                }
            }
            Ok(LossSpec {
                default_per,
                links,
                burst,
                burst_links,
                churn,
            })
        }
        other => Err(field(
            "loss.kind",
            &format!("unknown kind '{other}' (expected ideal | uniform | custom)"),
        )),
    }
}

fn parse_sweep(v: &JsonValue) -> Result<SweepSpec, ScenarioError> {
    let mut sweep = SweepSpec::default();
    if let Some(qs) = v.get("queue_caps") {
        let arr = qs
            .as_array()
            .ok_or_else(|| field("sweep.queue_caps", "must be an array of integers"))?;
        for (i, q) in arr.iter().enumerate() {
            let cap = q.as_u64().ok_or_else(|| {
                field(
                    &format!("sweep.queue_caps[{i}]"),
                    "must be a positive integer",
                )
            })? as usize;
            if cap == 0 {
                return Err(field(&format!("sweep.queue_caps[{i}]"), "must be nonzero"));
            }
            sweep.queue_caps.push(cap);
        }
    }
    if let Some(ss) = v.get("seeds") {
        let arr = ss
            .as_array()
            .ok_or_else(|| field("sweep.seeds", "must be an array of integers"))?;
        for (i, s) in arr.iter().enumerate() {
            sweep.seeds.push(s.as_u64().ok_or_else(|| {
                field(
                    &format!("sweep.seeds[{i}]"),
                    "must be a non-negative integer",
                )
            })?);
        }
    }
    if let Some(cs) = v.get("controllers") {
        let arr = cs
            .as_array()
            .ok_or_else(|| field("sweep.controllers", "must be an array of strings"))?;
        for (i, c) in arr.iter().enumerate() {
            sweep.controllers.push(
                c.as_str()
                    .ok_or_else(|| field(&format!("sweep.controllers[{i}]"), "must be a string"))?
                    .to_string(),
            );
        }
    }
    Ok(sweep)
}

// ---- serialisation helpers ----------------------------------------------

fn topology_json(t: &TopologySpec) -> JsonValue {
    match t {
        TopologySpec::Explicit { positions } => JsonValue::obj(vec![
            ("kind", JsonValue::str("explicit")),
            (
                "positions",
                JsonValue::Array(
                    positions
                        .iter()
                        .map(|p| JsonValue::Array(vec![JsonValue::from(p.x), JsonValue::from(p.y)]))
                        .collect(),
                ),
            ),
        ]),
        TopologySpec::Chain { hops, spacing } => JsonValue::obj(vec![
            ("kind", JsonValue::str("chain")),
            ("hops", JsonValue::from(*hops)),
            ("spacing", JsonValue::from(*spacing)),
        ]),
        TopologySpec::Grid {
            rows,
            cols,
            spacing,
        } => JsonValue::obj(vec![
            ("kind", JsonValue::str("grid")),
            ("rows", JsonValue::from(*rows)),
            ("cols", JsonValue::from(*cols)),
            ("spacing", JsonValue::from(*spacing)),
        ]),
        TopologySpec::RandomGeometric {
            nodes,
            width,
            height,
            gateways,
            seed,
        } => JsonValue::obj(vec![
            ("kind", JsonValue::str("random_geometric")),
            ("nodes", JsonValue::from(*nodes)),
            ("width", JsonValue::from(*width)),
            ("height", JsonValue::from(*height)),
            ("gateways", JsonValue::from(*gateways)),
            ("seed", JsonValue::from(*seed)),
        ]),
    }
}

fn transport_json(t: &Transport) -> JsonValue {
    match t {
        Transport::Cbr => JsonValue::obj(vec![("kind", JsonValue::str("cbr"))]),
        Transport::Windowed {
            window,
            ack_payload,
        } => JsonValue::obj(vec![
            ("kind", JsonValue::str("windowed")),
            ("window", JsonValue::from(*window)),
            ("ack_payload", JsonValue::from(*ack_payload)),
        ]),
        Transport::OnOff {
            mean_on,
            mean_off,
            alpha,
        } => JsonValue::obj(vec![
            ("kind", JsonValue::str("onoff")),
            ("mean_on_secs", JsonValue::from(duration_to_secs(*mean_on))),
            (
                "mean_off_secs",
                JsonValue::from(duration_to_secs(*mean_off)),
            ),
            ("alpha", JsonValue::from(*alpha)),
        ]),
    }
}

fn flow_json(f: &FlowSpec) -> JsonValue {
    JsonValue::obj(vec![
        (
            "path",
            JsonValue::Array(f.path.iter().map(|&n| JsonValue::from(n)).collect()),
        ),
        ("rate_bps", JsonValue::from(f.rate_bps)),
        ("payload_bytes", JsonValue::from(f.payload_bytes)),
        ("start_secs", JsonValue::from(time_to_secs(f.start))),
        ("stop_secs", JsonValue::from(time_to_secs(f.stop))),
        ("transport", transport_json(&f.transport)),
    ])
}

fn traffic_json(t: &TrafficMix) -> JsonValue {
    JsonValue::obj(vec![
        ("flows", JsonValue::from(t.flows)),
        ("rate_bps", JsonValue::from(t.rate_bps)),
        ("payload_bytes", JsonValue::from(t.payload_bytes)),
        ("start_secs", JsonValue::from(time_to_secs(t.start))),
        ("stop_secs", JsonValue::from(time_to_secs(t.stop))),
        (
            "mix",
            JsonValue::Array(
                t.mix
                    .iter()
                    .map(|m| {
                        JsonValue::obj(vec![
                            ("weight", JsonValue::from(m.weight)),
                            ("transport", transport_json(&m.transport)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn ge_fields(ge: &GilbertElliott) -> Vec<(&'static str, JsonValue)> {
    vec![
        ("p_g2b", JsonValue::from(ge.p_g2b)),
        ("p_b2g", JsonValue::from(ge.p_b2g)),
        ("p_good", JsonValue::from(ge.p_good)),
        ("p_bad", JsonValue::from(ge.p_bad)),
    ]
}

fn loss_json(l: &LossSpec) -> JsonValue {
    let custom = !l.links.is_empty()
        || l.burst.is_some()
        || !l.burst_links.is_empty()
        || !l.churn.is_empty();
    if !custom {
        if l.default_per == 0.0 {
            return JsonValue::obj(vec![("kind", JsonValue::str("ideal"))]);
        }
        return JsonValue::obj(vec![
            ("kind", JsonValue::str("uniform")),
            ("per", JsonValue::from(l.default_per)),
        ]);
    }
    let mut fields: Vec<(&str, JsonValue)> = vec![
        ("kind", JsonValue::str("custom")),
        ("default_per", JsonValue::from(l.default_per)),
    ];
    if !l.links.is_empty() {
        fields.push((
            "links",
            JsonValue::Array(
                l.links
                    .iter()
                    .map(|lp| {
                        JsonValue::obj(vec![
                            ("a", JsonValue::from(lp.a)),
                            ("b", JsonValue::from(lp.b)),
                            ("per", JsonValue::from(lp.per)),
                            ("symmetric", JsonValue::from(lp.symmetric)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if let Some(ge) = &l.burst {
        fields.push(("burst", JsonValue::obj(ge_fields(ge))));
    }
    if !l.burst_links.is_empty() {
        fields.push((
            "burst_links",
            JsonValue::Array(
                l.burst_links
                    .iter()
                    .map(|lb| {
                        let mut f =
                            vec![("a", JsonValue::from(lb.a)), ("b", JsonValue::from(lb.b))];
                        f.extend(ge_fields(&lb.ge));
                        f.push(("symmetric", JsonValue::from(lb.symmetric)));
                        JsonValue::obj(f)
                    })
                    .collect(),
            ),
        ));
    }
    if !l.churn.is_empty() {
        fields.push((
            "churn",
            JsonValue::Array(
                l.churn
                    .iter()
                    .map(|lc| {
                        JsonValue::obj(vec![
                            ("a", JsonValue::from(lc.a)),
                            ("b", JsonValue::from(lc.b)),
                            ("up_secs", JsonValue::from(duration_to_secs(lc.window.up))),
                            (
                                "down_secs",
                                JsonValue::from(duration_to_secs(lc.window.down)),
                            ),
                            (
                                "phase_secs",
                                JsonValue::from(duration_to_secs(lc.window.phase)),
                            ),
                            ("symmetric", JsonValue::from(lc.symmetric)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    JsonValue::obj(fields)
}

fn sweep_json(s: &SweepSpec) -> JsonValue {
    let mut fields: Vec<(&str, JsonValue)> = Vec::new();
    if !s.queue_caps.is_empty() {
        fields.push((
            "queue_caps",
            JsonValue::Array(s.queue_caps.iter().map(|&q| JsonValue::from(q)).collect()),
        ));
    }
    if !s.seeds.is_empty() {
        fields.push((
            "seeds",
            JsonValue::Array(s.seeds.iter().map(|&q| JsonValue::from(q)).collect()),
        ));
    }
    if !s.controllers.is_empty() {
        fields.push((
            "controllers",
            JsonValue::Array(s.controllers.iter().map(JsonValue::str).collect()),
        ));
    }
    JsonValue::obj(fields)
}

/// Reconstructs a [`LossSpec`] from a compiled [`LossModel`] (directed
/// entries, sorted) — the inverse `--emit-spec` needs.
fn loss_spec_of(m: &LossModel) -> LossSpec {
    let mut links: Vec<LinkPer> = m
        .per_link
        .iter()
        .map(|(&(a, b), &per)| LinkPer {
            a,
            b,
            per,
            symmetric: false,
        })
        .collect();
    links.sort_by_key(|l| (l.a, l.b));
    let mut burst_links: Vec<LinkBurst> = m
        .burst_link
        .iter()
        .map(|(&(a, b), &ge)| LinkBurst {
            a,
            b,
            ge,
            symmetric: false,
        })
        .collect();
    burst_links.sort_by_key(|l| (l.a, l.b));
    let mut churn: Vec<LinkChurn> = m
        .churn
        .iter()
        .map(|(&(a, b), &window)| LinkChurn {
            a,
            b,
            window,
            symmetric: false,
        })
        .collect();
    churn.sort_by_key(|l| (l.a, l.b));
    LossSpec {
        default_per: m.default_per,
        links,
        burst: m.burst,
        burst_links,
        churn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(topology: &str) -> String {
        format!(
            r#"{{"name": "t", "duration_secs": 10, "topology": {topology},
                "flows": [{{"path": [0, 1], "start_secs": 0, "stop_secs": 10}}]}}"#
        )
    }

    #[test]
    fn parses_a_minimal_chain_spec() {
        let text = r#"{"name": "c3", "duration_secs": 30,
                       "topology": {"kind": "chain", "hops": 3}}"#;
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.name, "c3");
        assert_eq!(spec.queue_cap, 50, "defaults applied");
        assert_eq!(spec.seed, 1);
        let c = spec.compile().unwrap();
        assert_eq!(c.topology.positions.len(), 4);
        assert_eq!(c.topology.flows.len(), 1, "chain gets its built-in flow");
        assert_eq!(c.topology.flows[0].path, vec![0, 1, 2, 3]);
        assert_eq!(c.until, Time::from_secs(30));
        assert_eq!(c.points.len(), 1);
        assert_eq!(c.points[0].label, "c3/80211");
        assert_eq!(c.points[0].controller, "802.11");
    }

    #[test]
    fn chain_spec_matches_constructor() {
        let spec = ScenarioSpec::parse(&minimal(r#"{"kind": "chain", "hops": 4, "spacing": 200}"#))
            .unwrap();
        let c = spec.compile().unwrap();
        let hand = crate::topo::chain(4, Time::ZERO, Time::from_secs(10));
        assert_eq!(c.topology.positions, hand.positions);
    }

    #[test]
    fn grid_spec_matches_constructor() {
        let text = r#"{"name": "g", "duration_secs": 60,
                       "topology": {"kind": "grid", "rows": 4, "cols": 4, "spacing": 140}}"#;
        let c = ScenarioSpec::parse(text).unwrap().compile().unwrap();
        let hand = crate::topo::grid(4, 4, 140.0, Time::ZERO, Time::from_secs(60));
        assert_eq!(c.topology.positions, hand.positions);
        assert_eq!(c.topology.flows.len(), hand.flows.len());
        for (a, b) in c.topology.flows.iter().zip(hand.flows.iter()) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.start, b.start);
            assert_eq!(a.stop, b.stop);
        }
    }

    #[test]
    fn syntax_errors_carry_line_and_column() {
        let text = "{\n  \"name\": \"x\",\n  \"duration_secs\": @\n}";
        match ScenarioSpec::parse(text).unwrap_err() {
            ScenarioError::Parse { line, col, .. } => {
                assert_eq!(line, 3);
                assert_eq!(col, 20);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn schema_errors_carry_field_paths() {
        let text = r#"{"name": "x", "duration_secs": 10,
                       "topology": {"kind": "chain", "hops": 2},
                       "flows": [{"path": [0, 1], "start_secs": 0, "stop_secs": 10,
                                  "transport": {"kind": "warp"}}]}"#;
        match ScenarioSpec::parse(text).unwrap_err() {
            ScenarioError::Field { path, message } => {
                assert_eq!(path, "flows[0].transport.kind");
                assert!(message.contains("warp"), "{message}");
            }
            other => panic!("expected field error, got {other:?}"),
        }
        let text = r#"{"name": "x", "topology": {"kind": "chain", "hops": 2}}"#;
        match ScenarioSpec::parse(text).unwrap_err() {
            ScenarioError::Field { path, .. } => assert_eq!(path, "duration_secs"),
            other => panic!("expected field error, got {other:?}"),
        }
    }

    #[test]
    fn compile_validates_the_result() {
        // Hop 0 -> 5 does not exist in a 2-hop chain.
        let text = r#"{"name": "x", "duration_secs": 10,
                       "topology": {"kind": "chain", "hops": 2},
                       "flows": [{"path": [0, 5], "start_secs": 0, "stop_secs": 10}]}"#;
        match ScenarioSpec::parse(text).unwrap().compile().unwrap_err() {
            ScenarioError::Spec(e) => {
                assert!(e.to_string().contains("out of bounds"), "{e}");
            }
            other => panic!("expected spec error, got {other:?}"),
        }
    }

    #[test]
    fn random_geometric_is_deterministic_and_connected() {
        let text = r#"{"name": "rg", "duration_secs": 10,
                       "topology": {"kind": "random_geometric", "nodes": 60,
                                    "width": 900, "height": 900, "gateways": 2, "seed": 9},
                       "traffic": {"flows": 8, "rate_bps": 200000,
                                   "start_secs": 0, "stop_secs": 10,
                                   "mix": [{"weight": 2, "transport": {"kind": "cbr"}},
                                           {"weight": 1, "transport": {"kind": "onoff",
                                             "mean_on_secs": 1, "mean_off_secs": 1,
                                             "alpha": 1.5}}]}}"#;
        let a = ScenarioSpec::parse(text).unwrap().compile().unwrap();
        let b = ScenarioSpec::parse(text).unwrap().compile().unwrap();
        assert_eq!(a.topology.positions, b.topology.positions);
        assert_eq!(a.topology.flows.len(), 8);
        for (fa, fb) in a.topology.flows.iter().zip(b.topology.flows.iter()) {
            assert_eq!(fa.path, fb.path, "same seed ⇒ identical routes");
            assert_eq!(fa.transport, fb.transport);
        }
        // The 2:1 mix assigns kinds cyclically: flows 0,1 CBR, 2 on-off.
        assert_eq!(a.topology.flows[0].transport, Transport::Cbr);
        assert_eq!(a.topology.flows[1].transport, Transport::Cbr);
        assert!(matches!(
            a.topology.flows[2].transport,
            Transport::OnOff { .. }
        ));
        // Every generated path ends at a gateway.
        for f in &a.topology.flows {
            assert!(*f.path.last().unwrap() < 2);
        }
    }

    #[test]
    fn sweep_expands_the_cartesian_product() {
        let text = r#"{"name": "s", "duration_secs": 10,
                       "topology": {"kind": "chain", "hops": 2},
                       "sweep": {"queue_caps": [25, 50], "seeds": [1, 2, 3],
                                 "controllers": ["802.11", "EZ-flow"]}}"#;
        let c = ScenarioSpec::parse(text).unwrap().compile().unwrap();
        assert_eq!(c.points.len(), 12);
        assert_eq!(c.points[0].label, "s/80211/qc25/seed1");
        assert_eq!(c.points[11].label, "s/EZ-flow/qc50/seed3");
        let uniq: std::collections::BTreeSet<&str> =
            c.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(uniq.len(), 12, "labels are unique");
    }

    #[test]
    fn loss_schedule_round_trips_and_compiles() {
        let text = r#"{"name": "l", "duration_secs": 10,
                       "topology": {"kind": "chain", "hops": 3},
                       "loss": {"kind": "custom", "default_per": 0.01,
                                "links": [{"a": 0, "b": 1, "per": 0.3}],
                                "burst": {"p_g2b": 0.02, "p_b2g": 0.1, "p_bad": 0.8},
                                "burst_links": [{"a": 1, "b": 2, "p_g2b": 0.05,
                                                 "p_b2g": 0.2, "p_bad": 0.9,
                                                 "symmetric": false}],
                                "churn": [{"a": 2, "b": 3, "up_secs": 5, "down_secs": 1}]}}"#;
        let spec = ScenarioSpec::parse(text).unwrap();
        let round = ScenarioSpec::parse(&spec.to_json().to_pretty()).unwrap();
        assert_eq!(spec, round);
        let m = spec.loss.compile();
        assert_eq!(m.loss_prob(0, 1), 0.3);
        assert_eq!(m.loss_prob(1, 0), 0.3, "symmetric by default");
        assert_eq!(m.loss_prob(1, 2), 0.01, "default per elsewhere");
        assert!(m.burst.is_some());
        assert_eq!(m.burst_link.len(), 1, "directed burst override");
        assert_eq!(m.churn.len(), 2, "symmetric churn covers both directions");
    }

    #[test]
    fn emitted_spec_round_trips_scenario1_exactly() {
        let hand = crate::topo::scenario1();
        let spec = ScenarioSpec::from_topology(
            &hand,
            "Fig. 5",
            crate::topo::scenario1_end(),
            1,
            &["802.11", "EZ-flow"],
        );
        let text = spec.to_json().to_pretty();
        let c = ScenarioSpec::parse(&text).unwrap().compile().unwrap();
        // Bit-exact positions (shortest-repr f64 round trip) and flows.
        assert_eq!(c.topology.positions, hand.positions);
        assert_eq!(c.topology.flows.len(), hand.flows.len());
        for (a, b) in c.topology.flows.iter().zip(hand.flows.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.path, b.path);
            assert_eq!(a.rate_bps, b.rate_bps);
            assert_eq!(a.payload_bytes, b.payload_bytes);
            assert_eq!(a.start, b.start);
            assert_eq!(a.stop, b.stop);
            assert_eq!(a.transport, b.transport);
        }
        assert_eq!(c.topology.loss, hand.loss);
    }

    #[test]
    fn traffic_mix_rejects_unroutable_topologies() {
        let text = r#"{"name": "x", "duration_secs": 10,
                       "topology": {"kind": "chain", "hops": 2},
                       "traffic": {"flows": 1, "rate_bps": 100000,
                                   "start_secs": 0, "stop_secs": 10,
                                   "mix": [{"transport": {"kind": "cbr"}}]}}"#;
        match ScenarioSpec::parse(text).unwrap().compile().unwrap_err() {
            ScenarioError::Field { path, message } => {
                assert_eq!(path, "traffic");
                assert!(message.contains("random_geometric"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sparse_random_geometric_reports_stranded_nodes() {
        // 5 nodes scattered over 100 km cannot possibly connect.
        let text = r#"{"name": "x", "duration_secs": 10,
                       "topology": {"kind": "random_geometric", "nodes": 5,
                                    "width": 100000, "height": 100000,
                                    "gateways": 1, "seed": 1},
                       "traffic": {"flows": 1, "rate_bps": 100000,
                                   "start_secs": 0, "stop_secs": 10,
                                   "mix": [{"transport": {"kind": "cbr"}}]}}"#;
        match ScenarioSpec::parse(text).unwrap().compile().unwrap_err() {
            ScenarioError::Field { path, message } => {
                assert_eq!(path, "topology");
                assert!(message.contains("cannot reach any gateway"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }
}
