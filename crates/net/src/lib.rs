//! # ezflow-net — the network layer and event loop
//!
//! This crate wires the substrates together into a runnable mesh network:
//!
//! * [`queue`] — drop-tail interface queues (the 50-packet MAC buffer of
//!   the paper's hardware), with the paper's queue discipline: a node that
//!   is both source and relay keeps **separate queues for its own and for
//!   forwarded traffic**, one per successor.
//! * [`routing`] — static next-hop routing (the NOAH agent of the paper's
//!   ns-2 setup: no route flapping, no routing overhead).
//! * [`traffic`] — constant-bit-rate sources (2 Mb/s CBR saturates every
//!   topology we study, as in §5.1).
//! * [`controller`] — the trait through which a flow-control algorithm
//!   (EZ-flow, the static-q penalty, DiffQ, or plain 802.11) observes the
//!   network *passively* and adapts `CWmin`.
//! * [`node`] / [`network`] — one node = queues + DCF MAC + controller;
//!   the [`network::Network`] owns the scheduler, the channel, and the
//!   metrics and runs the whole thing deterministically. It is a thin
//!   façade over three focused layers: [`builder`] (spec → network
//!   construction), [`engine`] (the scheduler event loop and
//!   MAC/channel/controller dispatch) and [`transport`] (per-flow pacing
//!   behind the [`transport::FlowTransport`] trait). `Network` is `Send`,
//!   so independent runs parallelise across plain threads.
//! * [`topo`] — the paper's topologies: K-hop chains (Fig. 1), the 9-node
//!   campus testbed (Fig. 3, calibrated to Table 1), scenario 1 (Fig. 5)
//!   and scenario 2 (Fig. 9).
//! * [`scenario`] — declarative scenario specs: JSON documents describing
//!   a topology (explicit or generative), traffic mix, loss schedule and
//!   sweep axes, compiled to the same [`topo::Topology`] /
//!   [`builder::NetworkSpec`] the hand-built constructors produce.
//! * [`metrics`] — per-flow throughput/delay series, per-node buffer and
//!   `CWmin` traces: everything needed to regenerate the paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod builder;
pub mod calibrate;
pub mod controller;
pub mod engine;
pub mod flight;
mod hot;
pub mod metrics;
pub mod network;
pub mod node;
pub mod partition;
pub mod queue;
pub mod routing;
pub mod scenario;
pub mod snapshot;
pub mod telemetry;
pub mod topo;
pub mod traffic;
pub mod transport;

pub use audit::{AuditEvent, AuditLedger, AuditRecord};
pub use builder::SpecError;
pub use controller::{
    Controller, ControllerCounters, ControllerEvent, ControllerFactory, DecisionKind,
    DecisionRecord, FixedController,
};
pub use flight::{group_journeys, summarize_journey, FlightRecorder, FlightStats, JourneySummary};
pub use metrics::Metrics;
pub use network::{Network, NetworkSpec, SchedKind};
pub use node::Node;
pub use partition::{partition_by_sensing, Partition};
pub use queue::TxQueue;
pub use routing::{GatewayRoutes, StaticRouting};
pub use scenario::{CompiledScenario, ScenarioError, ScenarioSpec, SweepPoint};
pub use snapshot::{
    ControllerLinkSnapshot, ControllerNodeSnapshot, ControllerSnapshot, EpisodeSnapshot,
    LatencySnapshot, NodeSnapshot, NodeStabilitySnapshot, PerfSnapshot, QueueSnapshot, RunSnapshot,
    SchedulerSnapshot, StabilitySnapshot, SCHEMA_VERSION,
};
pub use telemetry::Telemetry;
pub use topo::{FlowSpec, Topology};
pub use traffic::{CbrSource, Transport};
pub use transport::{FlowTransport, TransportCtx, TRANSPORT_ACK_FLOW};
