//! The network orchestrator.
//!
//! [`Network`] owns the scheduler, the shared channel, the nodes and the
//! metrics, and mediates between them: MAC outputs become channel calls and
//! scheduled timers, channel reports become MAC inputs and controller
//! observations. All randomness flows through per-node streams derived
//! from one master seed, so a run is a pure function of
//! `(NetworkSpec, controllers, seed)`.
//!
//! ## Event flow for one data frame
//!
//! ```text
//! Traffic ─▶ enqueue(own queue) ─▶ try_feed ─▶ Mac::Enqueue
//!   Mac ─▶ SetTimerTxPath ─▶ [scheduler] ─▶ Mac::TimerTxPath
//!   Mac ─▶ StartTx ─▶ Channel::start_tx ─▶ MediumBusy to neighbours
//!   [scheduler TxEnd] ─▶ Channel::end_tx
//!        ├─▶ MediumIdle to neighbours
//!        ├─▶ TxEnded to the transmitter (arms ACK timeout)
//!        ├─▶ RxData to the addressee ─▶ Deliver ─▶ forward or sink
//!        └─▶ Overheard to everyone else in decode range ─▶ controllers
//! ```

use std::collections::VecDeque;

use ezflow_mac::{Mac, MacConfig, MacInput, MacOutput, MacStats};
use ezflow_phy::{
    Channel, ChannelConfig, ChannelStats, Frame, FrameKind, LossModel, Position, TxId,
};
use ezflow_sim::{
    DropCause, Duration, FrameClass, Scheduler, SimRng, Time, TraceKind, TracePayload, TraceRing,
};

use crate::controller::{Controller, ControllerEvent};
use crate::metrics::Metrics;
use crate::node::Node;
use crate::routing::StaticRouting;
use crate::snapshot::{NodeSnapshot, PerfSnapshot, QueueSnapshot, RunSnapshot, SchedulerSnapshot};
use crate::topo::{FlowSpec, Topology};
use crate::traffic::{CbrSource, Transport};

/// Flow ids at or above this offset are internal transport-ACK streams of
/// windowed flows (ack flow id = `TRANSPORT_ACK_FLOW + data flow id`);
/// they carry no user payload and are excluded from the user metrics.
pub const TRANSPORT_ACK_FLOW: u32 = 1 << 24;

/// Closed-loop state of one windowed flow.
struct WindowState {
    src: usize,
    dst: usize,
    window: usize,
    payload: u32,
    ack_payload: u32,
    stop: Time,
    /// Outstanding data packets: seq -> send time.
    outstanding: std::collections::HashMap<u64, Time>,
    /// Credit timeout: an unacked packet older than this is written off
    /// (our transport does not retransmit; see `Transport::Windowed`).
    rto: Duration,
}

/// Static description of a network to build.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Node positions.
    pub positions: Vec<Position>,
    /// Channel geometry parameters.
    pub channel: ChannelConfig,
    /// Link loss process.
    pub loss: LossModel,
    /// MAC parameters.
    pub mac: MacConfig,
    /// Interface queue capacity, packets (the paper's hardware: 50).
    pub queue_cap: usize,
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Metric sampling period for buffer/cw traces.
    pub sample_every: Duration,
    /// Throughput bin width for the metric series.
    pub metric_bin: Duration,
    /// Master random seed.
    pub seed: u64,
    /// Trace ring capacity (0 disables tracing).
    pub trace_cap: usize,
}

impl NetworkSpec {
    /// Spec from a [`Topology`] with the paper's defaults (including the
    /// 3-hop carrier-sense range [`crate::topo::CS_RANGE`]).
    pub fn from_topology(topo: &Topology, seed: u64) -> Self {
        let channel = ChannelConfig {
            cs_range: crate::topo::CS_RANGE,
            ..ChannelConfig::default()
        };
        NetworkSpec {
            positions: topo.positions.clone(),
            channel,
            loss: topo.loss.clone(),
            mac: MacConfig::default(),
            queue_cap: 50,
            flows: topo.flows.clone(),
            sample_every: Duration::from_secs(1),
            metric_bin: Duration::from_secs(10),
            seed,
            trace_cap: 0,
        }
    }
}

#[derive(Clone, Debug)]
enum Ev {
    Traffic(usize),
    /// Periodic credit timeout for a windowed flow (by flow id).
    WindowRefresh(u32),
    MacTxPath {
        node: usize,
        epoch: u64,
    },
    MacAckJob {
        node: usize,
        epoch: u64,
    },
    MacNav {
        node: usize,
    },
    TxEnd {
        tx: TxId,
        node: usize,
    },
    Sample,
    Backlog,
}

/// Number of [`Ev`] kinds, for the per-kind dispatch counters.
const EV_KINDS: usize = 8;

/// Stable names of the [`Ev`] kinds, in [`ev_index`] order — the keys of
/// the snapshot's `dispatched_by_kind` object.
const EV_NAMES: [&str; EV_KINDS] = [
    "traffic",
    "window_refresh",
    "mac_tx_path",
    "mac_ack_job",
    "mac_nav",
    "tx_end",
    "sample",
    "backlog",
];

fn ev_index(ev: &Ev) -> usize {
    match ev {
        Ev::Traffic(_) => 0,
        Ev::WindowRefresh(_) => 1,
        Ev::MacTxPath { .. } => 2,
        Ev::MacAckJob { .. } => 3,
        Ev::MacNav { .. } => 4,
        Ev::TxEnd { .. } => 5,
        Ev::Sample => 6,
        Ev::Backlog => 7,
    }
}

fn frame_class(kind: FrameKind) -> FrameClass {
    match kind {
        FrameKind::Data => FrameClass::Data,
        FrameKind::Ack => FrameClass::Ack,
        FrameKind::Rts => FrameClass::Rts,
        FrameKind::Cts => FrameClass::Cts,
    }
}

fn frame_payload(frame: &Frame) -> TracePayload {
    TracePayload::Frame {
        class: frame_class(frame.kind),
        seq: frame.seq,
        flow: frame.flow,
        src: frame.src,
        dst: frame.dst,
        retry: frame.retry as u32,
    }
}

/// A runnable simulated mesh network.
pub struct Network {
    now: Time,
    sched: Scheduler<Ev>,
    channel: Channel,
    chan_rng: SimRng,
    nodes: Vec<Node>,
    routing: StaticRouting,
    sources: Vec<CbrSource>,
    /// Successor sets per node (for backlog reports).
    successors: Vec<Vec<usize>>,
    /// Closed-loop state per windowed flow id.
    windows: std::collections::HashMap<u32, WindowState>,
    queue_cap: usize,
    eifs: bool,
    sample_every: Duration,
    backlog_every: Option<Duration>,
    /// Recorded measurements.
    pub metrics: Metrics,
    /// Event trace ring.
    pub trace: TraceRing,
    worklist: VecDeque<(usize, MacInput)>,
    next_seq: u64,
    events: u64,
    /// Dispatch counts per [`Ev`] kind ([`ev_index`] order).
    dispatched: [u64; EV_KINDS],
    /// Wall-clock time spent inside `run_until` (perf accounting only;
    /// never fed back into the simulation).
    wall: std::time::Duration,
}

impl Network {
    /// Builds a network; `make_controller` is called once per node.
    pub fn new(spec: NetworkSpec, make_controller: &dyn Fn(usize) -> Box<dyn Controller>) -> Self {
        let n = spec.positions.len();
        let master = SimRng::new(spec.seed);
        let channel = Channel::new(&spec.positions, spec.channel, spec.loss.clone());
        let chan_rng = master.derive(u64::MAX);

        let mut routing = StaticRouting::new();
        for f in &spec.flows {
            routing.install_path(&f.path);
        }

        let mut nodes: Vec<Node> = (0..n)
            .map(|id| {
                Node::new(
                    id,
                    Mac::new(id, spec.mac),
                    make_controller(id),
                    master.derive(id as u64),
                )
            })
            .collect();

        // Windowed flows need the reverse path for their end-to-end ACKs.
        for f in &spec.flows {
            if matches!(f.transport, Transport::Windowed { .. }) {
                let mut rev = f.path.clone();
                rev.reverse();
                routing.install_path(&rev);
            }
        }

        // Create the queues each flow needs: an own-traffic queue at the
        // source, a forward queue at every relay (per successor).
        for f in &spec.flows {
            let src = f.path[0];
            let dst = *f.path.last().expect("non-empty path");
            let first_hop = routing.next_hop(src, dst).expect("installed");
            nodes[src].queue_index(true, first_hop, spec.queue_cap);
            for &relay in &f.path[1..f.path.len() - 1] {
                let nh = routing.next_hop(relay, dst).expect("installed");
                nodes[relay].queue_index(false, nh, spec.queue_cap);
            }
            if matches!(f.transport, Transport::Windowed { .. }) {
                // Reverse-direction queues: the sink originates ACKs, the
                // relays forward them toward the source.
                let first_back = routing.next_hop(dst, src).expect("installed");
                nodes[dst].queue_index(true, first_back, spec.queue_cap);
                for &relay in f.path[1..f.path.len() - 1].iter() {
                    let nh = routing.next_hop(relay, src).expect("installed");
                    nodes[relay].queue_index(false, nh, spec.queue_cap);
                }
            }
        }

        // Program initial contention windows.
        let mut worklist = VecDeque::new();
        for node in nodes.iter_mut() {
            if let Some(cw) = node.controller.initial_cw_min() {
                let outs =
                    node.mac
                        .input(Time::ZERO, MacInput::SetCwMin { cw_min: cw }, &mut node.rng);
                debug_assert!(outs.is_empty());
            }
        }

        let sources: Vec<CbrSource> = spec
            .flows
            .iter()
            .map(|f| CbrSource {
                flow: f.id,
                src: f.path[0],
                dst: *f.path.last().expect("non-empty"),
                rate_bps: f.rate_bps,
                payload_bytes: f.payload_bytes,
                start: f.start,
                stop: f.stop,
            })
            .collect();

        let successors: Vec<Vec<usize>> = (0..n).map(|id| routing.successors(id)).collect();
        let backlog_every = nodes
            .iter()
            .filter_map(|nd| nd.controller.backlog_period())
            .min();

        let flow_ids: Vec<u32> = spec.flows.iter().map(|f| f.id).collect();
        let metrics = Metrics::new(n, &flow_ids, spec.metric_bin);

        let mut windows = std::collections::HashMap::new();
        for f in &spec.flows {
            if let Transport::Windowed {
                window,
                ack_payload,
            } = f.transport
            {
                windows.insert(
                    f.id,
                    WindowState {
                        src: f.path[0],
                        dst: *f.path.last().expect("non-empty"),
                        window,
                        payload: f.payload_bytes,
                        ack_payload,
                        stop: f.stop,
                        outstanding: std::collections::HashMap::new(),
                        rto: Duration::from_secs(3),
                    },
                );
            }
        }

        let mut sched = Scheduler::new();
        for (i, s) in sources.iter().enumerate() {
            sched.schedule(s.start, Ev::Traffic(i));
        }
        for f in &spec.flows {
            if matches!(f.transport, Transport::Windowed { .. }) {
                sched.schedule(f.start + Duration::from_secs(1), Ev::WindowRefresh(f.id));
            }
        }
        sched.schedule(Time::ZERO + spec.sample_every, Ev::Sample);
        if let Some(p) = backlog_every {
            sched.schedule(Time::ZERO + p, Ev::Backlog);
        }

        worklist.clear();
        Network {
            now: Time::ZERO,
            sched,
            channel,
            chan_rng,
            nodes,
            routing,
            sources,
            successors,
            windows,
            queue_cap: spec.queue_cap,
            eifs: spec.mac.eifs,
            sample_every: spec.sample_every,
            backlog_every,
            metrics,
            trace: TraceRing::new(spec.trace_cap),
            worklist,
            next_seq: 0,
            events: 0,
            dispatched: [0; EV_KINDS],
            wall: std::time::Duration::ZERO,
        }
    }

    /// Convenience: build straight from a topology.
    pub fn from_topology(
        topo: &Topology,
        seed: u64,
        make_controller: &dyn Fn(usize) -> Box<dyn Controller>,
    ) -> Self {
        Network::new(NetworkSpec::from_topology(topo, seed), make_controller)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Interface-queue occupancy of `node`.
    pub fn occupancy(&self, node: usize) -> usize {
        self.nodes[node].occupancy()
    }

    /// Current `CWmin` of `node`'s MAC.
    pub fn cw_min(&self, node: usize) -> u32 {
        self.nodes[node].mac.cw_min()
    }

    /// MAC counters of `node`.
    pub fn mac_stats(&self, node: usize) -> MacStats {
        self.nodes[node].mac.stats()
    }

    /// Channel counters.
    pub fn channel_stats(&self) -> ChannelStats {
        self.channel.stats()
    }

    /// Cumulative transmit airtime of `node`.
    pub fn airtime(&self, node: usize) -> Duration {
        self.channel.airtime(node)
    }

    /// Fraction of `elapsed` that `node` spent transmitting.
    pub fn utilization(&self, node: usize, elapsed: Duration) -> f64 {
        self.channel.utilization(node, elapsed)
    }

    /// Controller name of `node`.
    pub fn controller_name(&self, node: usize) -> &'static str {
        self.nodes[node].controller.name()
    }

    /// Runs the simulation up to and including instant `until`.
    pub fn run_until(&mut self, until: Time) {
        debug_assert!(self.worklist.is_empty());
        let t0 = std::time::Instant::now();
        while let Some(at) = self.sched.peek_time() {
            if at > until {
                break;
            }
            let (at, ev) = self.sched.pop().expect("peeked");
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.events += 1;
            self.dispatched[ev_index(&ev)] += 1;
            self.handle(ev);
        }
        self.now = until;
        self.wall += t0.elapsed();
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Traffic(i) => self.on_traffic(i),
            Ev::WindowRefresh(flow) => self.on_window_refresh(flow),
            Ev::MacTxPath { node, epoch } => {
                self.worklist
                    .push_back((node, MacInput::TimerTxPath { epoch }));
                self.drain();
            }
            Ev::MacAckJob { node, epoch } => {
                self.worklist
                    .push_back((node, MacInput::TimerAckJob { epoch }));
                self.drain();
            }
            Ev::MacNav { node } => {
                self.worklist.push_back((node, MacInput::TimerNav));
                self.drain();
            }
            Ev::TxEnd { tx, node } => self.on_tx_end(tx, node),
            Ev::Sample => self.on_sample(),
            Ev::Backlog => self.on_backlog(),
        }
    }

    fn on_traffic(&mut self, i: usize) {
        let s = self.sources[i].clone();
        if s.active_at(self.now) {
            if self.windows.contains_key(&s.flow) {
                self.window_fill(s.flow);
            } else {
                self.emit_data_packet(s.flow, s.src, s.dst, s.payload_bytes);
            }
            self.drain();
        }
        let next = self.now + s.interval();
        if next < s.stop {
            self.sched.schedule(next, Ev::Traffic(i));
        }
    }

    /// Creates one data packet at `src` bound for `dst` and offers it to
    /// the source queue.
    fn emit_data_packet(&mut self, flow: u32, src: usize, dst: usize, payload: u32) -> u64 {
        self.emit_packet(flow, src, dst, payload, 0)
    }

    fn emit_packet(
        &mut self,
        flow: u32,
        src: usize,
        dst: usize,
        payload: u32,
        ack_ref: u64,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut frame = Frame::data(seq, flow, src, dst, payload, self.now);
        frame.ack_ref = ack_ref;
        let nh = self
            .routing
            .next_hop(src, dst)
            .expect("source must be routed");
        frame.src = src;
        frame.dst = nh;
        if !self.nodes[src].enqueue(true, frame) {
            *self.metrics.source_drops.entry(flow).or_insert(0) += 1;
        }
        self.try_feed(src);
        seq
    }

    /// Tops a windowed flow up to its window, while it is active.
    fn window_fill(&mut self, flow: u32) {
        loop {
            let Some(w) = self.windows.get(&flow) else {
                return;
            };
            if self.now >= w.stop || w.outstanding.len() >= w.window {
                return;
            }
            let (src, dst, payload) = (w.src, w.dst, w.payload);
            let seq = self.emit_data_packet(flow, src, dst, payload);
            self.windows
                .get_mut(&flow)
                .expect("checked")
                .outstanding
                .insert(seq, self.now);
        }
    }

    /// Credit timeout: write off outstanding packets older than the RTO
    /// (lost in the network; this transport does not retransmit).
    fn on_window_refresh(&mut self, flow: u32) {
        let Some(w) = self.windows.get_mut(&flow) else {
            return;
        };
        let now = self.now;
        let rto = w.rto;
        w.outstanding
            .retain(|_, &mut sent| now.saturating_since(sent) < rto);
        let stop = w.stop;
        self.window_fill(flow);
        self.drain();
        if self.now < stop {
            self.sched
                .schedule(self.now + Duration::from_secs(1), Ev::WindowRefresh(flow));
        }
    }

    fn on_tx_end(&mut self, tx: TxId, node: usize) {
        let report = self.channel.end_tx(self.now, tx, &mut self.chan_rng);
        if self.trace.enabled() {
            self.trace.push(
                self.now,
                node,
                TraceKind::TxEnd,
                frame_payload(&report.frame),
            );
        }
        if self.eifs {
            // EIFS marks must precede the idle transitions so the resumed
            // deferral uses the extended space.
            for &r in &report.sensed_dirty {
                self.worklist.push_back((r, MacInput::EifsMark));
            }
        }
        for &r in &report.became_idle {
            self.worklist.push_back((r, MacInput::MediumIdle));
        }
        self.worklist.push_back((
            node,
            MacInput::TxEnded {
                medium_busy: self.channel.is_busy(node),
            },
        ));
        let frame = report.frame;
        for d in &report.deliveries {
            if !d.clean {
                if self.trace.enabled() && d.node == frame.dst {
                    self.trace.push(
                        self.now,
                        d.node,
                        TraceKind::Collision,
                        TracePayload::Collision {
                            seq: frame.seq,
                            src: frame.src,
                        },
                    );
                }
                continue;
            }
            if d.node == frame.dst {
                let input = match frame.kind {
                    FrameKind::Data => MacInput::RxData {
                        frame: frame.clone(),
                    },
                    FrameKind::Ack => MacInput::RxAck {
                        frame: frame.clone(),
                    },
                    FrameKind::Rts => MacInput::RxRts {
                        frame: frame.clone(),
                    },
                    FrameKind::Cts => MacInput::RxCts {
                        frame: frame.clone(),
                    },
                };
                self.worklist.push_back((d.node, input));
            } else {
                match frame.kind {
                    FrameKind::Data => {
                        // Passive overhearing: the controller gets it for
                        // free.
                        let cmd = self.nodes[d.node]
                            .controller
                            .on_event(self.now, ControllerEvent::Overheard { frame: &frame });
                        self.apply_cw(d.node, cmd);
                    }
                    // Virtual carrier sense: overheard RTS/CTS reserve the
                    // medium from the end of the frame.
                    FrameKind::Rts | FrameKind::Cts if frame.nav_micros > 0 => {
                        let until = self.now + ezflow_sim::Duration::from_micros(frame.nav_micros);
                        self.worklist
                            .push_back((d.node, MacInput::NavSet { until }));
                    }
                    _ => {}
                }
            }
        }
        self.drain();
    }

    fn on_sample(&mut self) {
        for id in 0..self.nodes.len() {
            let occ = self.nodes[id].occupancy();
            let cw = self.nodes[id].mac.cw_min();
            self.metrics.on_sample(self.now, id, occ, cw);
        }
        self.sched
            .schedule(self.now + self.sample_every, Ev::Sample);
    }

    fn on_backlog(&mut self) {
        for id in 0..self.nodes.len() {
            if self.nodes[id].controller.backlog_period().is_none() {
                continue;
            }
            for si in 0..self.successors[id].len() {
                let s = self.successors[id][si];
                let backlog = self.nodes[s].occupancy();
                let own_backlog = self.nodes[id].occupancy();
                let cmd = self.nodes[id].controller.on_event(
                    self.now,
                    ControllerEvent::NeighborBacklog {
                        neighbor: s,
                        backlog,
                        own_backlog,
                    },
                );
                self.apply_cw(id, cmd);
            }
        }
        self.drain();
        if let Some(p) = self.backlog_every {
            self.sched.schedule(self.now + p, Ev::Backlog);
        }
    }

    /// Processes queued MAC inputs until quiescence.
    fn drain(&mut self) {
        while let Some((id, input)) = self.worklist.pop_front() {
            let outs = {
                let node = &mut self.nodes[id];
                node.mac.input(self.now, input, &mut node.rng)
            };
            for o in outs {
                self.handle_output(id, o);
            }
            self.try_feed(id);
        }
    }

    fn handle_output(&mut self, id: usize, out: MacOutput) {
        match out {
            MacOutput::StartTx { frame, air } => {
                if self.trace.enabled() {
                    self.trace
                        .push(self.now, id, TraceKind::TxStart, frame_payload(&frame));
                }
                let end = self.now + air;
                let rep = self.channel.start_tx(self.now, frame, end);
                self.sched.schedule(
                    end,
                    Ev::TxEnd {
                        tx: rep.tx_id,
                        node: id,
                    },
                );
                for r in rep.became_busy {
                    self.worklist.push_back((r, MacInput::MediumBusy));
                }
            }
            MacOutput::SetTimerTxPath { after, epoch } => {
                self.sched
                    .schedule(self.now + after, Ev::MacTxPath { node: id, epoch });
            }
            MacOutput::SetTimerAckJob { after, epoch } => {
                self.sched
                    .schedule(self.now + after, Ev::MacAckJob { node: id, epoch });
            }
            MacOutput::SetTimerNav { after } => {
                self.sched
                    .schedule(self.now + after, Ev::MacNav { node: id });
            }
            MacOutput::TxSuccess { frame, .. } => {
                let cmd = self.nodes[id].controller.on_event(
                    self.now,
                    ControllerEvent::SentToSuccessor {
                        successor: frame.dst,
                        frame: &frame,
                    },
                );
                self.apply_cw(id, cmd);
            }
            MacOutput::TxDropped { frame, .. } => {
                self.metrics.retry_drops[id] += 1;
                if self.trace.enabled() {
                    self.trace.push(
                        self.now,
                        id,
                        TraceKind::Drop,
                        TracePayload::Drop {
                            cause: DropCause::RetryLimit,
                            seq: frame.seq,
                        },
                    );
                }
            }
            MacOutput::Deliver { frame } => self.on_deliver(id, frame),
            MacOutput::NeedFrame => self.try_feed(id),
        }
    }

    fn on_deliver(&mut self, id: usize, frame: Frame) {
        if frame.final_dst == id {
            if frame.flow >= TRANSPORT_ACK_FLOW {
                // A transport ACK made it back to the source: release the
                // credit and clock out the next packet.
                let data_flow = frame.flow - TRANSPORT_ACK_FLOW;
                if let Some(w) = self.windows.get_mut(&data_flow) {
                    w.outstanding.remove(&frame.ack_ref);
                }
                self.window_fill(data_flow);
                return;
            }
            self.metrics.on_delivery(self.now, &frame);
            if let Some(w) = self.windows.get(&frame.flow) {
                // The sink acknowledges end-to-end: a small ACK packet
                // travels the reverse path like any other traffic.
                let (sink, source, ack_payload) = (w.dst, w.src, w.ack_payload);
                self.emit_packet(
                    frame.flow + TRANSPORT_ACK_FLOW,
                    sink,
                    source,
                    ack_payload,
                    frame.seq,
                );
            }
            return;
        }
        let Some(nh) = self.routing.next_hop(id, frame.final_dst) else {
            // A frame we cannot route: topology bug; count as a drop.
            self.metrics.queue_drops[id] += 1;
            return;
        };
        let mut fwd = frame;
        fwd.src = id;
        fwd.dst = nh;
        fwd.retry = false;
        let seq = fwd.seq;
        if !self.nodes[id].enqueue(false, fwd) {
            self.metrics.queue_drops[id] += 1;
            if self.trace.enabled() {
                self.trace.push(
                    self.now,
                    id,
                    TraceKind::Drop,
                    TracePayload::Drop {
                        cause: DropCause::QueueFull,
                        seq,
                    },
                );
            }
        }
        self.try_feed(id);
    }

    /// Feeds the MAC its next frame if it is idle and a queue is backlogged.
    fn try_feed(&mut self, id: usize) {
        if !self.nodes[id].mac.is_idle() {
            return;
        }
        let Some((mut frame, qidx)) = self.nodes[id].pop_round_robin() else {
            return;
        };
        if frame.origin == id && frame.entered_net == frame.created {
            frame.entered_net = self.now;
        }
        // §7 extension: per-successor windows. If the controller keeps a
        // distinct window for this frame's successor, program it for this
        // frame's contention (the 802.11e per-queue CWmin pattern).
        if let Some(cw) = self.nodes[id].controller.queue_window(frame.dst) {
            if cw != self.nodes[id].mac.cw_min() {
                let node = &mut self.nodes[id];
                let outs =
                    node.mac
                        .input(self.now, MacInput::SetCwMin { cw_min: cw }, &mut node.rng);
                debug_assert!(outs.is_empty());
            }
        }
        let outs = {
            let node = &mut self.nodes[id];
            node.mac.input(
                self.now,
                MacInput::Enqueue { frame, queue: qidx },
                &mut node.rng,
            )
        };
        for o in outs {
            self.handle_output(id, o);
        }
    }

    fn apply_cw(&mut self, id: usize, cmd: Option<u32>) {
        let Some(cw) = cmd else { return };
        if cw == self.nodes[id].mac.cw_min() {
            return;
        }
        if self.trace.enabled() {
            self.trace.push(
                self.now,
                id,
                TraceKind::CwChange,
                TracePayload::CwChange {
                    from: self.nodes[id].mac.cw_min(),
                    to: cw,
                },
            );
        }
        let node = &mut self.nodes[id];
        let outs = node
            .mac
            .input(self.now, MacInput::SetCwMin { cw_min: cw }, &mut node.rng);
        debug_assert!(outs.is_empty());
    }

    /// Dispatch counts per event kind, `(name, count)`, in dispatch order.
    pub fn dispatched_by_kind(&self) -> Vec<(&'static str, u64)> {
        EV_NAMES
            .iter()
            .zip(self.dispatched.iter())
            .map(|(&name, &n)| (name, n))
            .collect()
    }

    /// Wall-clock time spent inside [`Network::run_until`] so far.
    pub fn wall_time(&self) -> std::time::Duration {
        self.wall
    }

    /// Takes a [`RunSnapshot`] of the whole network at the current
    /// simulated instant. Mutable because the channel's airtime accounts
    /// are brought up to date first.
    pub fn snapshot(&mut self, label: &str) -> RunSnapshot {
        self.channel.accrue_airtime(self.now);
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, node)| NodeSnapshot {
                id,
                controller: node.controller.name().to_string(),
                cw_min: node.mac.cw_min(),
                airtime: self.channel.airtime_breakdown(id),
                mac: node.mac.stats(),
                counters: node.controller.counters(),
                queues: node
                    .queues
                    .iter()
                    .map(|q| QueueSnapshot {
                        own: q.own,
                        successor: q.successor,
                        occupancy: q.len(),
                        cap: q.cap(),
                        high_water: q.high_water,
                        drops: q.drops,
                        accepted: q.accepted,
                    })
                    .collect(),
            })
            .collect();
        let wall_secs = self.wall.as_secs_f64();
        let sim_secs = self.now.as_micros() as f64 / 1e6;
        let per_wall = |x: f64| if wall_secs > 0.0 { x / wall_secs } else { 0.0 };
        RunSnapshot {
            label: label.to_string(),
            at_us: self.now.as_micros(),
            nodes,
            channel: self.channel.stats(),
            scheduler: SchedulerSnapshot {
                scheduled_total: self.sched.scheduled_total(),
                dispatched_total: self.events,
                pending: self.sched.len(),
                depth_high_water: self.sched.depth_high_water(),
                dispatched_by_kind: EV_NAMES
                    .iter()
                    .zip(self.dispatched.iter())
                    .map(|(&name, &n)| (name.to_string(), n))
                    .collect(),
            },
            perf: PerfSnapshot {
                wall_secs,
                sim_secs,
                events_per_sec: per_wall(self.events as f64),
                sim_rate: per_wall(sim_secs),
            },
            trace_records: self.trace.pushed_total(),
        }
    }

    /// Read-only access to a node (tests and experiments).
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Queue capacity the network was built with.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FixedController;
    use crate::topo;

    fn std_controller(_id: usize) -> Box<dyn Controller> {
        Box::new(FixedController::standard())
    }

    fn run_chain(hops: usize, secs: u64, seed: u64) -> Network {
        let t = topo::chain(hops, Time::ZERO, Time::from_secs(secs));
        let mut net = Network::from_topology(&t, seed, &std_controller);
        net.run_until(Time::from_secs(secs));
        net
    }

    #[test]
    fn single_hop_link_saturates_near_ideal_capacity() {
        let net = run_chain(1, 60, 1);
        let kbps = net
            .metrics
            .mean_kbps(0, Time::from_secs(10), Time::from_secs(60));
        // Analytic loss-free capacity is ~880 kb/s (see calibrate.rs).
        assert!(
            (850.0..905.0).contains(&kbps),
            "1-hop saturation throughput {kbps} kb/s"
        );
        // No relay: no queue drops anywhere but the source.
        assert_eq!(net.metrics.queue_drops.iter().sum::<u64>(), 0);
        assert!(net.metrics.source_drops[&0] > 0, "2 Mb/s CBR must overflow");
    }

    #[test]
    fn two_hop_throughput_is_roughly_half() {
        let net = run_chain(2, 60, 2);
        let kbps = net
            .metrics
            .mean_kbps(0, Time::from_secs(10), Time::from_secs(60));
        // Two mutually-sensing transmitters share the channel.
        assert!(
            (350.0..480.0).contains(&kbps),
            "2-hop saturation throughput {kbps} kb/s"
        );
    }

    #[test]
    fn delivery_counters_are_consistent() {
        let net = run_chain(3, 30, 3);
        let delivered = net.metrics.delivered[&0];
        assert!(delivered > 0);
        let bits = net.metrics.throughput[&0].total_bits();
        assert_eq!(bits as u64, delivered * 8000);
        // Delays are positive and time-ordered.
        let pts = net.metrics.delay_net[&0].points();
        assert_eq!(pts.len() as u64, delivered);
        assert!(pts.iter().all(|&(_, d)| d > 0.0));
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let a = run_chain(4, 20, 42);
        let b = run_chain(4, 20, 42);
        assert_eq!(a.metrics.delivered[&0], b.metrics.delivered[&0]);
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(a.mac_stats(0).tx_attempts, b.mac_stats(0).tx_attempts);
        let ka = a.metrics.mean_kbps(0, Time::ZERO, Time::from_secs(20));
        let kb = b.metrics.mean_kbps(0, Time::ZERO, Time::from_secs(20));
        assert_eq!(ka, kb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_chain(4, 20, 1);
        let b = run_chain(4, 20, 2);
        let sig = |n: &Network| {
            (0..4)
                .map(|i| n.mac_stats(i).tx_attempts)
                .collect::<Vec<_>>()
        };
        assert_ne!(
            sig(&a),
            sig(&b),
            "independent randomness should change micro-behaviour"
        );
    }

    #[test]
    fn without_capture_hidden_terminals_collide() {
        // Fault-model check: disabling capture turns the hidden pair
        // (0, 3) of a 4-hop chain into a collision source, and the MAC
        // recovers by retrying.
        let t = topo::chain(4, Time::ZERO, Time::from_secs(30));
        let mut spec = NetworkSpec::from_topology(&t, 5);
        spec.channel.cs_range = 550.0; // 3-hop neighbours hidden again
        spec.channel.capture_ratio = f64::INFINITY;
        let mut net = Network::new(spec, &std_controller);
        net.run_until(Time::from_secs(30));
        assert!(
            net.channel_stats().collisions_at_dst > 0,
            "hidden terminals must collide without capture"
        );
        assert!(net.mac_stats(0).retries > 0, "the MAC must retry");
        assert!(
            net.metrics.delivered[&0] > 0,
            "traffic still flows end to end"
        );
    }

    #[test]
    fn four_hop_first_relay_buffer_builds_up() {
        // The paper's Fig. 1: in a 4-hop chain under standard 802.11, the
        // first relay's buffer grows to saturation.
        let net = run_chain(4, 120, 7);
        let b1 = net.metrics.buffer[1].window(Time::from_secs(60), Time::from_secs(120));
        assert!(
            b1.mean > 40.0,
            "node 1 buffer should build toward 50, got mean {}",
            b1.mean
        );
        assert!(
            net.metrics.queue_drops[1] > 500,
            "the saturated relay must shed overflow, got {}",
            net.metrics.queue_drops[1]
        );
    }

    #[test]
    fn three_hop_chain_is_stable() {
        // "Stable" in the paper's sense: the relay buffer fluctuates but
        // does not ratchet to saturation, and overflow drops stay
        // negligible — contrast with `four_hop_first_relay_buffer_builds_up`.
        let net = run_chain(3, 120, 7);
        let b1 = net.metrics.buffer[1].window(Time::from_secs(60), Time::from_secs(120));
        assert!(
            b1.mean < 35.0,
            "3-hop node-1 mean buffer should stay off the ceiling, got {}",
            b1.mean
        );
        assert!(
            net.metrics.queue_drops[1] < 200,
            "3-hop relay overflow drops should be negligible, got {}",
            net.metrics.queue_drops[1]
        );
    }

    #[test]
    fn traffic_stops_at_flow_end() {
        let t = topo::chain(1, Time::ZERO, Time::from_secs(5));
        let mut net = Network::from_topology(&t, 9, &std_controller);
        net.run_until(Time::from_secs(30));
        let before = net.metrics.mean_kbps(0, Time::ZERO, Time::from_secs(5));
        let after = net
            .metrics
            .mean_kbps(0, Time::from_secs(10), Time::from_secs(30));
        assert!(before > 100.0);
        assert_eq!(after, 0.0, "no deliveries after the flow stops");
    }

    #[test]
    fn snapshot_captures_cross_layer_state_and_round_trips() {
        let t = topo::chain(3, Time::ZERO, Time::from_secs(20));
        let mut spec = NetworkSpec::from_topology(&t, 13);
        spec.trace_cap = 256;
        let mut net = Network::new(spec, &std_controller);
        net.run_until(Time::from_secs(20));
        let snap = net.snapshot("chain-3");

        assert_eq!(snap.label, "chain-3");
        assert_eq!(snap.at_us, 20_000_000);
        assert_eq!(snap.nodes.len(), 4);
        assert!(snap.scheduler.dispatched_total > 0);
        assert_eq!(
            snap.scheduler.dispatched_total,
            snap.scheduler
                .dispatched_by_kind
                .iter()
                .map(|(_, n)| n)
                .sum::<u64>(),
            "per-kind counts must sum to the total"
        );
        assert!(snap.scheduler.scheduled_total >= snap.scheduler.dispatched_total);
        assert!(snap.scheduler.depth_high_water > 0);
        assert!(snap.trace_records > 0);
        let tx_ends = snap
            .scheduler
            .dispatched_by_kind
            .iter()
            .find(|(k, _)| k == "tx_end")
            .expect("tx_end kind present")
            .1;
        assert!(tx_ends > 0, "a saturated chain transmits");
        for node in &snap.nodes {
            assert_eq!(node.controller, "802.11");
            assert_eq!(
                node.airtime.total_us(),
                snap.at_us,
                "airtime buckets must partition the run"
            );
        }
        // The source transmits; its counters show up.
        assert!(snap.nodes[0].mac.tx_attempts > 0);
        assert!(snap.nodes[0].airtime.tx_us > 0);
        assert!(snap.nodes[0].queues[0].high_water > 0);
        // Wall-clock accounting ran.
        assert!(snap.perf.wall_secs > 0.0);
        assert!(snap.perf.events_per_sec > 0.0);

        // JSON round trip through the sim JSON kernel.
        let text = snap.to_json().to_pretty();
        let parsed = ezflow_sim::JsonValue::parse(&text).unwrap();
        let back = crate::snapshot::RunSnapshot::from_json(&parsed).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn trace_exports_typed_payloads_as_jsonl() {
        let t = topo::chain(2, Time::ZERO, Time::from_secs(10));
        let mut spec = NetworkSpec::from_topology(&t, 21);
        spec.trace_cap = 4096;
        let mut net = Network::new(spec, &std_controller);
        net.run_until(Time::from_secs(10));
        let jsonl = net.trace.to_jsonl();
        let parsed = ezflow_sim::TraceRing::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.len(), net.trace.len());
        // Typed payloads survived the trip: at least one frame record.
        assert!(parsed
            .iter()
            .any(|ev| matches!(ev.payload, ezflow_sim::TracePayload::Frame { .. })));
    }

    #[test]
    fn sample_traces_cover_the_run() {
        let net = run_chain(2, 10, 11);
        assert_eq!(net.metrics.buffer[0].len(), 10);
        assert_eq!(net.metrics.cw[1].len(), 10);
        // Standard controller: cw stays at the default.
        let cw = net.metrics.cw[1].window(Time::ZERO, Time::from_secs(10));
        assert_eq!(cw.mean, 32.0);
    }
}
