//! The network orchestrator — a thin façade over three focused layers.
//!
//! [`Network`] owns the scheduler, the shared channel, the nodes and the
//! metrics. The work is split across sibling modules with explicit
//! interfaces, and this module only defines the state and the public
//! read API:
//!
//! * [`crate::builder`] — spec → network construction
//!   ([`NetworkSpec::build`], the body of [`Network::new`]);
//! * [`crate::engine`] — the scheduler event loop ([`Network::run_until`],
//!   [`Network::snapshot`]) and MAC/channel/controller dispatch;
//! * [`crate::transport`] — per-flow pacing behind the
//!   [`crate::transport::FlowTransport`] trait (CBR and windowed).
//!
//! All randomness flows through per-node streams derived from one master
//! seed, so a run is a pure function of `(NetworkSpec, controllers,
//! seed)` — and, because `Network` is `Send` (asserted below), many runs
//! can proceed on independent threads without compromising that.
//!
//! ## Event flow for one data frame
//!
//! ```text
//! Traffic ─▶ enqueue(own queue) ─▶ try_feed ─▶ Mac::Enqueue
//!   Mac ─▶ SetTimerTxPath ─▶ [scheduler] ─▶ Mac::TimerTxPath
//!   Mac ─▶ StartTx ─▶ Channel::start_tx ─▶ MediumBusy to neighbours
//!   [scheduler TxEnd] ─▶ Channel::end_tx
//!        ├─▶ MediumIdle to neighbours
//!        ├─▶ TxEnded to the transmitter (arms ACK timeout)
//!        ├─▶ RxData to the addressee ─▶ Deliver ─▶ forward or sink
//!        └─▶ Overheard to everyone else in decode range ─▶ controllers
//! ```

use std::collections::VecDeque;

use ezflow_mac::MacStats;
use ezflow_phy::{Channel, ChannelStats, FrameArena};
use ezflow_sim::{Duration, ShardedScheduler, SimRng, Time, TraceRing};

pub use crate::builder::NetworkSpec;
pub use crate::transport::TRANSPORT_ACK_FLOW;
pub use ezflow_sim::SchedKind;

use crate::audit::AuditLedger;
use crate::controller::Controller;
use crate::engine::{Ev, WorkInput, EV_KINDS, PROFILE_KINDS};
use crate::flight::FlightRecorder;
use crate::hot::HotState;
use crate::metrics::Metrics;
use crate::node::Node;
use crate::routing::StaticRouting;
use crate::telemetry::Telemetry;
use crate::topo::Topology;
use crate::traffic::CbrSource;
use crate::transport::FlowTransport;

/// A runnable simulated mesh network.
///
/// Construction lives in [`crate::builder`], the event loop in
/// [`crate::engine`]; this type is the shared state they operate on and
/// the stable public surface (`new`, `run_until`, `snapshot`, `metrics`).
pub struct Network {
    pub(crate) now: Time,
    /// The event queue: one backend per interference-domain partition,
    /// merged back into the exact serial `(at, seq)` order (see
    /// [`ezflow_sim::ShardedScheduler`] and [`crate::partition`]). With
    /// `spec.shards <= 1` this is one queue and behaves — byte for byte,
    /// gauges included — like the serial scheduler it replaced.
    pub(crate) sched: ShardedScheduler<Ev>,
    pub(crate) channel: Channel,
    /// The single store of every live frame: queues, MACs and the
    /// channel trade 8-byte [`ezflow_phy::FrameId`] handles into this
    /// slab instead of passing ~100-byte `Frame` values around (see
    /// [`ezflow_phy::FrameArena`]). Ownership protocol: an id is
    /// released exactly once, at the packet's terminal event.
    pub(crate) arena: FrameArena,
    pub(crate) chan_rng: SimRng,
    pub(crate) nodes: Vec<Node>,
    /// Struct-of-arrays per-node hot state: pending MAC timer slots and
    /// the queue-occupancy mirror (see [`crate::hot`]).
    pub(crate) hot: HotState,
    pub(crate) routing: StaticRouting,
    pub(crate) sources: Vec<CbrSource>,
    /// Inter-packet interval per source, precomputed at build time so
    /// the per-tick path re-arms without redoing the rate division.
    pub(crate) source_intervals: Vec<Duration>,
    /// Successor sets per node (for backlog reports).
    pub(crate) successors: Vec<Vec<usize>>,
    /// Per-flow pacing discipline, keyed by flow id. An assoc list in
    /// flow-declaration order, not a map: the lookup sits on the
    /// per-tick path and a linear probe of a handful of entries beats
    /// tree descent twice per tick (the slot is `take`n while the
    /// transport runs against the network, hence the `Option`).
    pub(crate) transports: Vec<(u32, Option<Box<dyn FlowTransport>>)>,
    pub(crate) queue_cap: usize,
    pub(crate) eifs: bool,
    pub(crate) sample_every: Duration,
    pub(crate) backlog_every: Option<Duration>,
    /// Recorded measurements.
    pub metrics: Metrics,
    /// Event trace ring.
    pub trace: TraceRing,
    /// Per-packet lifecycle recorder (disabled unless the spec sets
    /// `flight_cap > 0`).
    pub flight: FlightRecorder,
    /// Telemetry bus (disabled unless the spec sets `telemetry_every`);
    /// see [`crate::telemetry`].
    pub telemetry: Telemetry,
    /// Controller-provenance audit ledger (disabled unless the spec sets
    /// `audit_cap > 0`); see [`crate::audit`].
    pub audit: AuditLedger,
    /// Engine self-profiler switch (the spec's `profile`).
    pub(crate) profile: bool,
    /// Wall-clock nanoseconds per handler kind (self-profiler; all zero
    /// when `profile` is off).
    pub(crate) handler_ns: [u64; PROFILE_KINDS],
    /// Pending MAC inputs as compact descriptors (see
    /// [`crate::engine::WorkInput`]); received frames ride in
    /// [`Self::rx_frames`] so the deque moves 16 bytes per entry, not a
    /// whole `MacInput`.
    pub(crate) worklist: VecDeque<(usize, WorkInput)>,
    /// Frame handles for the `Rx*` entries of [`Self::worklist`], in the
    /// same FIFO order — the drain loop pops one per `Rx*` marker.
    pub(crate) rx_frames: VecDeque<ezflow_phy::FrameId>,
    pub(crate) next_seq: u64,
    pub(crate) events: u64,
    /// Dispatch counts per event kind.
    pub(crate) dispatched: [u64; EV_KINDS],
    /// Cached `(name, count)` view of `dispatched`, refreshed on read by
    /// [`Network::dispatched_by_kind`] so the getter never allocates.
    pub(crate) by_kind_cache: [(&'static str, u64); EV_KINDS],
    /// Scratch channel reports, refilled in place by `start_tx_into` /
    /// `end_tx_into` on every transmission — the steady state of the
    /// event loop allocates nothing for them.
    pub(crate) start_report: ezflow_phy::StartReport,
    /// Taken out (`std::mem::take`) while its deliveries fan out, then
    /// put back, like `transports` in [`crate::transport`].
    pub(crate) end_report: ezflow_phy::EndReport,
    /// Pool of drained MAC output buffers. A pool rather than a single
    /// buffer because output handling recurses (Deliver → enqueue →
    /// try_feed feeds the MAC again); depth bounds the pool size.
    pub(crate) mac_out_pool: Vec<Vec<ezflow_mac::MacOutput>>,
    /// Wall-clock time spent inside `run_until` (perf accounting only;
    /// never fed back into the simulation).
    pub(crate) wall: std::time::Duration,
    /// Sensing edges cut by the partition (endpoints in different
    /// shards), for the bench report; 0 with one shard.
    pub(crate) cut_edges: usize,
    /// Total undirected sensing edges in the interference graph.
    pub(crate) graph_edges: usize,
}

/// `Network` must stay `Send`: the sweep runner in `ezflow-bench` moves
/// whole networks across `std::thread::scope` workers. The bound is
/// enforced here, at the root, so a non-`Send` field (an `Rc`, a raw
/// pointer, a non-`Send` controller) fails to compile with a message
/// pointing at this line rather than at a distant spawn site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Network>();
    assert_send::<NetworkSpec>();
};

impl Network {
    /// Builds a network; `make_controller` is called once per node.
    pub fn new(spec: NetworkSpec, make_controller: &dyn Fn(usize) -> Box<dyn Controller>) -> Self {
        crate::builder::build(spec, make_controller)
    }

    /// Convenience: build straight from a topology.
    pub fn from_topology(
        topo: &Topology,
        seed: u64,
        make_controller: &dyn Fn(usize) -> Box<dyn Controller>,
    ) -> Self {
        Network::new(NetworkSpec::from_topology(topo, seed), make_controller)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Which scheduler backend this network runs on.
    pub fn sched_kind(&self) -> SchedKind {
        self.sched.kind()
    }

    /// Stale timer events elided inside the scheduler's pop loop — never
    /// dispatched, never counted in [`Network::events_processed`].
    pub fn sched_stale_elided(&self) -> u64 {
        self.sched.stale_drops()
    }

    /// Timer entries moved in place by keyed rescheduling — each one is a
    /// scheduler entry consumed without a dispatch, exactly as a pop-time
    /// elision used to be (see [`ezflow_sim::Scheduler::reschedule`]).
    pub fn sched_rescheduled(&self) -> u64 {
        self.sched.rescheduled_total()
    }

    /// Timer entries physically removed (parked frozen countdowns).
    pub fn sched_removed(&self) -> u64 {
        self.sched.removed_total()
    }

    /// Number of scheduler shards (interference-domain partitions) this
    /// network runs over; 1 means serial.
    pub fn shards(&self) -> usize {
        self.sched.shards()
    }

    /// Scheduler posts that crossed a partition boundary (zero when
    /// serial); see [`ezflow_sim::ShardedScheduler::cut_deliveries`].
    pub fn sched_cut_deliveries(&self) -> u64 {
        self.sched.cut_deliveries()
    }

    /// Lookahead-epoch barrier synchronizations a conservative threaded
    /// runtime would perform (zero when serial); see
    /// [`ezflow_sim::ShardedScheduler::barrier_waits`].
    pub fn sched_barrier_waits(&self) -> u64 {
        self.sched.barrier_waits()
    }

    /// `cut edges / total edges` of the interference graph under the
    /// active partition (0.0 when serial or edgeless).
    pub fn cut_edge_fraction(&self) -> f64 {
        if self.graph_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.graph_edges as f64
        }
    }

    /// Frames currently live in the arena (queued + held by MACs + on
    /// the air).
    pub fn arena_live(&self) -> usize {
        self.arena.live()
    }

    /// Peak live-frame population — the arena's memory footprint in
    /// frames (its slab never shrinks).
    pub fn arena_high_water(&self) -> usize {
        self.arena.high_water()
    }

    /// Arena allocations served by recycling a released slot; in steady
    /// state this tracks [`ezflow_phy::FrameArena::allocated_total`]
    /// one-for-one.
    pub fn arena_slot_reuses(&self) -> u64 {
        self.arena.slot_reuses()
    }

    /// Total frame allocations ever made in the arena.
    pub fn arena_allocated_total(&self) -> u64 {
        self.arena.allocated_total()
    }

    /// Arena slab capacity in slots (live + free); growth stops once the
    /// run's peak frame population has been seen.
    pub fn arena_capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Interface-queue occupancy of `node`.
    pub fn occupancy(&self, node: usize) -> usize {
        self.nodes[node].occupancy()
    }

    /// Current `CWmin` of `node`'s MAC.
    pub fn cw_min(&self, node: usize) -> u32 {
        self.nodes[node].mac.cw_min()
    }

    /// MAC counters of `node`.
    pub fn mac_stats(&self, node: usize) -> MacStats {
        self.nodes[node].mac.stats()
    }

    /// Channel counters.
    pub fn channel_stats(&self) -> ChannelStats {
        self.channel.stats()
    }

    /// Cumulative transmit airtime of `node`.
    pub fn airtime(&self, node: usize) -> Duration {
        self.channel.airtime(node)
    }

    /// Fraction of `elapsed` that `node` spent transmitting.
    pub fn utilization(&self, node: usize, elapsed: Duration) -> f64 {
        self.channel.utilization(node, elapsed)
    }

    /// Controller name of `node`.
    pub fn controller_name(&self, node: usize) -> &'static str {
        self.nodes[node].controller.name()
    }

    /// Read-only access to a node (tests and experiments).
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Queue capacity the network was built with.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }
}
