//! Drop-tail interface queues.
//!
//! §3.1 of the paper: *"In order not to starve forwarded traffic, each node
//! that acts both as source and relay should maintain 2 independent queues:
//! one for its own traffic and another for the forwarded traffic.
//! Furthermore, a node that has multiple successors should maintain 1 queue
//! per successor."* [`TxQueue`] is one such queue; a node owns a small
//! vector of them and serves them round-robin.

use std::collections::VecDeque;

use ezflow_phy::FrameId;

/// One FIFO transmit queue, bound to a successor node.
#[derive(Debug)]
pub struct TxQueue {
    /// True for locally generated traffic, false for forwarded traffic.
    pub own: bool,
    /// The next-hop this queue feeds.
    pub successor: usize,
    cap: usize,
    fifo: VecDeque<FrameId>,
    /// Frames rejected because the queue was full.
    pub drops: u64,
    /// Frames ever accepted.
    pub accepted: u64,
    /// Deepest occupancy ever reached.
    pub high_water: usize,
}

impl TxQueue {
    /// Creates an empty queue with capacity `cap` packets (the paper's
    /// hardware: 50).
    pub fn new(own: bool, successor: usize, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        TxQueue {
            own,
            successor,
            cap,
            fifo: VecDeque::with_capacity(cap),
            drops: 0,
            accepted: 0,
            high_water: 0,
        }
    }

    /// Current occupancy in packets.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Capacity in packets.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Enqueues a frame handle; returns `false` (and counts a drop) when
    /// full. The queue never dereferences the id — ownership of the slot
    /// stays with whoever pushed until a matching [`TxQueue::pop`].
    pub fn push(&mut self, frame: FrameId) -> bool {
        if self.fifo.len() >= self.cap {
            self.drops += 1;
            false
        } else {
            self.accepted += 1;
            self.fifo.push_back(frame);
            self.high_water = self.high_water.max(self.fifo.len());
            true
        }
    }

    /// Dequeues the head frame handle.
    pub fn pop(&mut self) -> Option<FrameId> {
        self.fifo.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezflow_phy::{Frame, FrameArena};
    use ezflow_sim::Time;

    fn frame(arena: &mut FrameArena, seq: u64) -> FrameId {
        arena.alloc(Frame::data(seq, 0, 0, 4, 1000, Time::ZERO))
    }

    #[test]
    fn fifo_order() {
        let mut arena = FrameArena::new();
        let mut q = TxQueue::new(false, 1, 10);
        for i in 0..5 {
            assert!(q.push(frame(&mut arena, i)));
        }
        for i in 0..5 {
            assert_eq!(arena.get(q.pop().unwrap()).seq, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn drop_tail_at_capacity() {
        let mut arena = FrameArena::new();
        let mut q = TxQueue::new(true, 2, 3);
        assert!(q.push(frame(&mut arena, 0)));
        assert!(q.push(frame(&mut arena, 1)));
        assert!(q.push(frame(&mut arena, 2)));
        assert!(
            !q.push(frame(&mut arena, 3)),
            "fourth push must be rejected"
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.drops, 1);
        assert_eq!(q.accepted, 3);
        // The dropped frame is the *new* arrival: head is still seq 0.
        assert_eq!(arena.get(q.pop().unwrap()).seq, 0);
        // Space freed: accepts again.
        assert!(q.push(frame(&mut arena, 4)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        TxQueue::new(false, 0, 0);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut arena = FrameArena::new();
        let mut q = TxQueue::new(false, 1, 10);
        assert_eq!(q.high_water, 0);
        for i in 0..4 {
            q.push(frame(&mut arena, i));
        }
        q.pop();
        q.pop();
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water, 4, "peak, not current");
        q.push(frame(&mut arena, 9));
        assert_eq!(q.high_water, 4, "refill below the peak");
        q.push(frame(&mut arena, 10));
        q.push(frame(&mut arena, 11));
        assert_eq!(q.high_water, 5);
    }
}
