//! The telemetry bus — deterministic periodic sampling of live state.
//!
//! When a spec sets `telemetry_every`, the engine schedules a dedicated
//! periodic sampler event (default 100 ms of simulated time) that
//! snapshots per-node queue depths, airtime fractions and MAC counter
//! deltas plus per-flow windowed throughput into ring-buffered
//! [`TimeSeries`], and optionally streams one JSONL record per window to
//! a sink while the run is still in flight.
//!
//! ## Zero interference
//!
//! Telemetry must never change what a run computes:
//!
//! * the sampler only *reads* simulation state — queue occupancies, MAC
//!   counters and throughput totals are pure reads, and the airtime
//!   settle it forces ([`ezflow_phy::Channel::accrue_airtime`]) splits
//!   the lazy integer-microsecond accrual exactly, so every later
//!   observation is unchanged;
//! * the engine dispatches the sampler *outside* its event accounting
//!   (`events`, per-kind counts), and [`Network::snapshot`] subtracts
//!   the sampler's own scheduler traffic — `Telemetry::pushes` events
//!   scheduled, exactly one resident entry, exactly one unit of queue
//!   depth — so a telemetry-on snapshot serialises byte-identically to
//!   the telemetry-off one (perf zeroed, stability section aside);
//! * with `telemetry_every` unset, no event is ever scheduled and the
//!   only cost is one branch per pop.
//!
//! [`Network::snapshot`]: crate::network::Network::snapshot
//! [`Network`]: crate::network::Network

use std::io::Write;

use ezflow_mac::MacStats;
use ezflow_phy::Airtime;
use ezflow_sim::{Duration, JsonValue, Time};
use ezflow_stats::{stability, TimeSeries};

use crate::snapshot::{EpisodeSnapshot, NodeStabilitySnapshot, StabilitySnapshot};

/// Per-flow telemetry state: id, previous cumulative delivered bits, and
/// the windowed-throughput ring.
struct FlowTelemetry {
    id: u32,
    prev_bits: f64,
    kbps: TimeSeries<f64>,
}

/// The telemetry sampler's state: rings, previous-counter baselines for
/// the deltas, and the optional JSONL sink. Owned by
/// [`crate::network::Network`] as the public `telemetry` field.
pub struct Telemetry {
    every: Option<Duration>,
    /// Scheduler pushes made for the sampler event (for the snapshot's
    /// exact scheduler-counter compensation).
    pushes: u64,
    /// Completed sample windows.
    windows: u64,
    /// Per-node queue-depth ring (total interface-queue occupancy at
    /// each window boundary).
    queue_depth: Vec<TimeSeries<f64>>,
    /// Per-node non-idle airtime fraction of each window.
    active_frac: Vec<TimeSeries<f64>>,
    flows: Vec<FlowTelemetry>,
    prev_mac: Vec<MacStats>,
    prev_air: Vec<Airtime>,
    /// Scratch: the current window's per-node JSON records (only built
    /// when a sink is attached).
    scratch: Vec<JsonValue>,
    sink: Option<Box<dyn Write + Send>>,
}

impl Telemetry {
    /// Creates the sampler state for `n` nodes and the given flows.
    /// `every: None` disables telemetry entirely; `cap` bounds each ring
    /// (oldest windows are evicted first).
    pub(crate) fn new(n: usize, flow_ids: &[u32], every: Option<Duration>, cap: usize) -> Self {
        let (queue_depth, active_frac, flows) = match every {
            Some(p) => {
                assert!(!p.is_zero(), "telemetry interval must be nonzero");
                let mut ids: Vec<u32> = flow_ids.to_vec();
                ids.sort_unstable();
                (
                    (0..n).map(|_| TimeSeries::new(p, cap)).collect(),
                    (0..n).map(|_| TimeSeries::new(p, cap)).collect(),
                    ids.into_iter()
                        .map(|id| FlowTelemetry {
                            id,
                            prev_bits: 0.0,
                            kbps: TimeSeries::new(p, cap),
                        })
                        .collect(),
                )
            }
            None => (Vec::new(), Vec::new(), Vec::new()),
        };
        Telemetry {
            every,
            pushes: 0,
            windows: 0,
            queue_depth,
            active_frac,
            flows,
            prev_mac: vec![MacStats::default(); if every.is_some() { n } else { 0 }],
            prev_air: vec![Airtime::default(); if every.is_some() { n } else { 0 }],
            scratch: Vec::new(),
            sink: None,
        }
    }

    /// True iff the sampler is armed (the spec set `telemetry_every`).
    pub fn enabled(&self) -> bool {
        self.every.is_some()
    }

    /// The sampling interval. Panics when telemetry is disabled.
    pub fn every(&self) -> Duration {
        self.every.expect("telemetry is enabled")
    }

    /// Sampler events scheduled so far (the snapshot compensation).
    pub(crate) fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Records one sampler-event push.
    pub(crate) fn note_push(&mut self) {
        self.pushes += 1;
    }

    /// Completed sample windows.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Per-node queue-depth ring (one value per completed window).
    pub fn queue_depth(&self, node: usize) -> &TimeSeries<f64> {
        &self.queue_depth[node]
    }

    /// Per-node non-idle airtime fraction ring.
    pub fn active_frac(&self, node: usize) -> &TimeSeries<f64> {
        &self.active_frac[node]
    }

    /// Per-flow windowed throughput rings, `(flow id, kb/s series)`, in
    /// flow-id order.
    pub fn flow_kbps(&self) -> impl Iterator<Item = (u32, &TimeSeries<f64>)> {
        self.flows.iter().map(|f| (f.id, &f.kbps))
    }

    /// Attaches a JSONL sink: one compact record per completed sample
    /// window, written while the run is in flight. Write errors are
    /// ignored (telemetry must never fail a run).
    pub fn set_sink(&mut self, sink: Box<dyn Write + Send>) {
        self.sink = Some(sink);
    }

    /// Feeds one node's readings for the closing window.
    pub(crate) fn node_sample(&mut self, node: usize, queue: f64, air: Airtime, mac: MacStats) {
        self.queue_depth[node].push(queue);
        let d_total = air.total_us() - self.prev_air[node].total_us();
        let d_idle = air.idle_us - self.prev_air[node].idle_us;
        let d_tx = air.tx_us - self.prev_air[node].tx_us;
        let active = if d_total > 0 {
            (d_total - d_idle) as f64 / d_total as f64
        } else {
            0.0
        };
        self.active_frac[node].push(active);
        if self.sink.is_some() {
            let prev = &self.prev_mac[node];
            self.scratch.push(JsonValue::obj(vec![
                ("id", node.into()),
                ("queue", queue.into()),
                ("active_frac", active.into()),
                (
                    "tx_frac",
                    if d_total > 0 {
                        d_tx as f64 / d_total as f64
                    } else {
                        0.0
                    }
                    .into(),
                ),
                ("mac_tx", (mac.tx_attempts - prev.tx_attempts).into()),
                ("mac_success", (mac.tx_success - prev.tx_success).into()),
                ("mac_retries", (mac.retries - prev.retries).into()),
            ]));
        }
        self.prev_air[node] = air;
        self.prev_mac[node] = mac;
    }

    /// Feeds one flow's cumulative delivered bits for the closing window
    /// (`i` indexes flows in flow-id order).
    pub(crate) fn flow_sample(&mut self, i: usize, total_bits: f64) {
        let f = &mut self.flows[i];
        let secs = self.every.expect("telemetry is enabled").as_secs_f64();
        f.kbps.push((total_bits - f.prev_bits) / secs / 1000.0);
        f.prev_bits = total_bits;
    }

    /// Closes the window ending at `now`: bumps the window count and
    /// streams the JSONL record if a sink is attached.
    pub(crate) fn finish_window(&mut self, now: Time) {
        self.windows += 1;
        let Some(sink) = self.sink.as_mut() else {
            self.scratch.clear();
            return;
        };
        let flows = self
            .flows
            .iter()
            .map(|f| {
                JsonValue::obj(vec![
                    ("flow", f.id.into()),
                    ("kbps", (*f.kbps.latest().unwrap_or(&0.0)).into()),
                ])
            })
            .collect();
        let rec = JsonValue::obj(vec![
            ("at_us", now.as_micros().into()),
            ("window", (self.windows - 1).into()),
            (
                "interval_us",
                self.every.expect("telemetry is enabled").as_micros().into(),
            ),
            ("nodes", JsonValue::Array(std::mem::take(&mut self.scratch))),
            ("flows", JsonValue::Array(flows)),
        ]);
        let _ = writeln!(sink, "{}", rec.to_compact());
    }

    /// The stability section of a [`crate::snapshot::RunSnapshot`]:
    /// per-node oscillation scores and episodes over the retained queue
    /// rings, plus the windowed Jain fairness over the flow rings.
    /// `None` while telemetry is disabled — the snapshot key is omitted
    /// so telemetry-off JSON stays byte-identical.
    pub fn stability_snapshot(&self) -> Option<StabilitySnapshot> {
        let every = self.every?;
        let cfg = stability::StabilityConfig::default();
        let nodes: Vec<NodeStabilitySnapshot> = self
            .queue_depth
            .iter()
            .enumerate()
            .map(|(node, series)| {
                let st = stability::analyze(series, &cfg);
                NodeStabilitySnapshot {
                    node,
                    amplitude_mean: st.amplitude.mean,
                    amplitude_max: st.amplitude.max,
                    cv_mean: st.cv.mean,
                    episodes: st
                        .episodes
                        .iter()
                        .map(|e| EpisodeSnapshot {
                            start_us: e.start.as_micros(),
                            end_us: e.end.as_micros(),
                            peak_amplitude: e.peak_amplitude,
                        })
                        .collect(),
                }
            })
            .collect();
        let flow_series: Vec<&TimeSeries<f64>> = self.flows.iter().map(|f| &f.kbps).collect();
        let fairness = stability::windowed_jain(&flow_series);
        let (mut f_min, mut f_sum) = (1.0f64, 0.0f64);
        for &(_, fi) in &fairness {
            f_min = f_min.min(fi);
            f_sum += fi;
        }
        Some(StabilitySnapshot {
            interval_us: every.as_micros(),
            windows: self.windows,
            episodes_total: nodes.iter().map(|n| n.episodes.len() as u64).sum(),
            worst_amplitude_mean: nodes.iter().map(|n| n.amplitude_mean).fold(0.0, f64::max),
            fairness_min_window: f_min,
            fairness_mean_window: if fairness.is_empty() {
                1.0
            } else {
                f_sum / fairness.len() as f64
            },
            nodes,
        })
    }
}
