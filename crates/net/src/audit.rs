//! The controller audit ledger — provenance for BOE estimates and CAA
//! decisions.
//!
//! When a spec sets `audit_cap > 0`, the engine pairs every BOE sample
//! with the successor's *true* queue depth at the same instant and
//! records every `CWmin` decision together with the inputs that produced
//! it (see [`crate::controller::DecisionRecord`]). Records are kept in a
//! bounded ring like the flight recorder (oldest evicted first, totals
//! never lost), fed into per-link [`EstimationTracker`]s for the
//! snapshot's error summaries, and optionally streamed as JSONL while
//! the run is in flight (`experiments --audit-dir=DIR`).
//!
//! ## Zero interference
//!
//! The audit is strictly *pull*-based and must never change what a run
//! computes:
//!
//! * it schedules no events and draws no randomness — unlike telemetry
//!   there is nothing to compensate in the scheduler counters;
//! * controllers stash their last estimate/decision unconditionally (a
//!   few Copy word stores); the engine only *takes* them — and only
//!   reads the successor's occupancy mirror — when the ledger is armed;
//! * with `audit_cap = 0` the only cost is one branch per probe site,
//!   and the snapshot omits its `controller` section entirely, so
//!   audit-off JSON stays byte-identical (gated in `hotpath_bench
//!   --check` alongside the telemetry gate).
//!
//! ## Ground truth
//!
//! At an `Overheard` dispatch the engine is fanning out the deliveries
//! of the successor's own forward transmission, *before* the transmitter
//! processes its `TxEnded` (and thus before any queue pop at the
//! successor). FIFO queues therefore make the occupancy mirror at that
//! instant exactly the quantity BOE estimates — on a clean channel the
//! recorded error is zero, per the paper; bursty loss (Gilbert-Elliott)
//! makes BOE miss overhears and the error series shows it.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;

use ezflow_sim::{JsonValue, Time};
use ezflow_stats::{EstimationTracker, StabilityConfig};

use crate::controller::DecisionRecord;
use crate::snapshot::{
    ControllerLinkSnapshot, ControllerNodeSnapshot, ControllerSnapshot, EpisodeSnapshot,
};

/// One audited observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AuditEvent {
    /// A BOE estimate paired with the successor's true queue depth at
    /// the same instant.
    Sample {
        /// The successor whose buffer was estimated.
        successor: usize,
        /// BOE's estimate `b̂`.
        estimate: u32,
        /// The successor's actual interface-queue occupancy.
        truth: u32,
    },
    /// A `CWmin` decision with its inputs.
    Decision(DecisionRecord),
}

/// One entry of the audit ring: what happened, where, and when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditRecord {
    /// Simulated time of the observation.
    pub at: Time,
    /// The node whose controller produced it.
    pub node: usize,
    /// The observation.
    pub event: AuditEvent,
}

impl AuditRecord {
    /// Compact JSON form — one JSONL line of the `--audit-dir` export.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("at_us", JsonValue::from(self.at.as_micros())),
            ("node", self.node.into()),
        ];
        match self.event {
            AuditEvent::Sample {
                successor,
                estimate,
                truth,
            } => {
                fields.push(("kind", JsonValue::str("sample")));
                fields.push(("successor", successor.into()));
                fields.push(("estimate", estimate.into()));
                fields.push(("truth", truth.into()));
            }
            AuditEvent::Decision(d) => {
                fields.push(("kind", JsonValue::str(d.kind.name())));
                if let Some(s) = d.successor {
                    fields.push(("successor", s.into()));
                }
                fields.push(("avg", d.avg.into()));
                fields.push(("countup", d.countup.into()));
                fields.push(("countdown", d.countdown.into()));
                fields.push(("up_threshold", d.up_threshold.into()));
                fields.push(("down_threshold", d.down_threshold.into()));
                fields.push(("cw_before", d.cw_before.into()));
                fields.push(("cw_after", d.cw_after.into()));
            }
        }
        JsonValue::obj(fields)
    }
}

/// The bounded decision/estimate ledger. Owned by
/// [`crate::network::Network`] as the public `audit` field; disabled
/// (every probe site is one branch) unless the spec sets `audit_cap`.
pub struct AuditLedger {
    cap: usize,
    records: VecDeque<AuditRecord>,
    /// Records ever recorded (eviction never loses the count).
    pushed: u64,
    /// Decision records among them.
    decisions_total: u64,
    /// Records evicted from the ring.
    evicted: u64,
    /// Per-node count of decisions that actually moved the window.
    cw_changes: Vec<u64>,
    /// Per-(node → successor) estimation-error trackers, in
    /// deterministic key order.
    links: BTreeMap<(usize, usize), EstimationTracker>,
    sink: Option<Box<dyn Write + Send>>,
}

impl AuditLedger {
    /// Creates the ledger for `n` nodes; `cap = 0` disables it.
    pub(crate) fn new(n: usize, cap: usize) -> Self {
        AuditLedger {
            cap,
            records: VecDeque::new(),
            pushed: 0,
            decisions_total: 0,
            evicted: 0,
            cw_changes: if cap > 0 { vec![0; n] } else { Vec::new() },
            links: BTreeMap::new(),
            sink: None,
        }
    }

    /// True iff the ledger is armed (the spec set `audit_cap > 0`).
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Records ever observed (including evicted ones).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Decision records among [`AuditLedger::pushed`].
    pub fn decisions_total(&self) -> u64 {
        self.decisions_total
    }

    /// Records evicted to honour the ring bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter()
    }

    /// Window-changing decisions recorded for `node`.
    pub fn cw_changes(&self, node: usize) -> u64 {
        self.cw_changes.get(node).copied().unwrap_or(0)
    }

    /// The estimation-error summary of one (node → successor) link, if
    /// any samples were recorded for it.
    pub fn link_summary(
        &self,
        node: usize,
        successor: usize,
    ) -> Option<ezflow_stats::EstimationSummary> {
        self.links.get(&(node, successor)).map(|t| t.summary())
    }

    /// Attaches a JSONL sink: one compact record per audit entry, written
    /// while the run is in flight. Write errors are ignored (the audit
    /// must never fail a run).
    pub fn set_sink(&mut self, sink: Box<dyn Write + Send>) {
        self.sink = Some(sink);
    }

    fn push(&mut self, rec: AuditRecord) {
        if let Some(sink) = self.sink.as_mut() {
            let _ = writeln!(sink, "{}", rec.to_json().to_compact());
        }
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(rec);
        self.pushed += 1;
    }

    /// Records one estimate/truth pair for the `node → successor` link.
    /// No-op while disabled (the engine guards, this double-checks).
    pub(crate) fn record_sample(
        &mut self,
        at: Time,
        node: usize,
        successor: usize,
        estimate: u32,
        truth: u32,
    ) {
        if !self.enabled() {
            return;
        }
        self.links
            .entry((node, successor))
            .or_insert_with(|| EstimationTracker::new(StabilityConfig::default()))
            .on_sample(at, estimate, truth);
        self.push(AuditRecord {
            at,
            node,
            event: AuditEvent::Sample {
                successor,
                estimate,
                truth,
            },
        });
    }

    /// Records one `CWmin` decision made by `node`'s controller.
    pub(crate) fn record_decision(&mut self, at: Time, node: usize, d: DecisionRecord) {
        if !self.enabled() {
            return;
        }
        self.decisions_total += 1;
        if d.cw_after != d.cw_before {
            self.cw_changes[node] += 1;
        }
        self.push(AuditRecord {
            at,
            node,
            event: AuditEvent::Decision(d),
        });
    }

    /// The `controller` section of a [`crate::snapshot::RunSnapshot`]:
    /// per-node CW-change counts (nodes with at least one change) and
    /// per-link estimation-error summaries with divergence episodes.
    /// `None` while the audit is disabled — the snapshot key is omitted
    /// so audit-off JSON stays byte-identical.
    pub fn controller_snapshot(&self) -> Option<ControllerSnapshot> {
        if !self.enabled() {
            return None;
        }
        let nodes: Vec<ControllerNodeSnapshot> = self
            .cw_changes
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(node, &cw_changes)| ControllerNodeSnapshot { node, cw_changes })
            .collect();
        let links: Vec<ControllerLinkSnapshot> = self
            .links
            .iter()
            .map(|(&(node, successor), tracker)| {
                let s = tracker.summary();
                ControllerLinkSnapshot {
                    node,
                    successor,
                    samples: s.samples,
                    bias: s.bias,
                    mae: s.mae,
                    max_abs: s.max_abs,
                    episodes: s
                        .episodes
                        .iter()
                        .map(|e| EpisodeSnapshot {
                            start_us: e.start.as_micros(),
                            end_us: e.end.as_micros(),
                            peak_amplitude: e.peak_amplitude,
                        })
                        .collect(),
                }
            })
            .collect();
        Some(ControllerSnapshot {
            records: self.pushed,
            decisions_total: self.decisions_total,
            nodes,
            links,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{DecisionKind, DecisionRecord};

    fn decision(cw_before: u32, cw_after: u32) -> DecisionRecord {
        DecisionRecord {
            kind: if cw_after > cw_before {
                DecisionKind::Increase
            } else {
                DecisionKind::Decrease
            },
            successor: Some(2),
            avg: 25.0,
            countup: 0,
            countdown: 0,
            up_threshold: 5,
            down_threshold: 10,
            cw_before,
            cw_after,
        }
    }

    #[test]
    fn disabled_ledger_records_nothing() {
        let mut a = AuditLedger::new(4, 0);
        assert!(!a.enabled());
        a.record_sample(Time::ZERO, 1, 2, 3, 3);
        a.record_decision(Time::ZERO, 1, decision(32, 64));
        assert_eq!(a.pushed(), 0);
        assert!(a.controller_snapshot().is_none());
    }

    #[test]
    fn ring_bounds_retention_but_not_totals() {
        let mut a = AuditLedger::new(4, 2);
        for i in 0..5u32 {
            a.record_sample(Time::from_millis(i as u64), 1, 2, i, i);
        }
        assert_eq!(a.pushed(), 5);
        assert_eq!(a.evicted(), 3);
        assert_eq!(a.records().count(), 2);
        // Trackers keep the full series even after ring eviction.
        let snap = a.controller_snapshot().unwrap();
        assert_eq!(snap.links.len(), 1);
        assert_eq!(snap.links[0].samples, 5);
        assert_eq!(snap.links[0].mae, 0.0);
    }

    #[test]
    fn decisions_count_window_moves_per_node() {
        let mut a = AuditLedger::new(4, 16);
        a.record_decision(Time::ZERO, 1, decision(32, 64));
        a.record_decision(Time::ZERO, 1, decision(64, 64)); // a hold
        a.record_decision(Time::ZERO, 3, decision(64, 32));
        let snap = a.controller_snapshot().unwrap();
        assert_eq!(snap.decisions_total, 3);
        assert_eq!(snap.nodes.len(), 2, "only nodes that moved the window");
        assert_eq!((snap.nodes[0].node, snap.nodes[0].cw_changes), (1, 1));
        assert_eq!((snap.nodes[1].node, snap.nodes[1].cw_changes), (3, 1));
    }

    #[test]
    fn json_records_carry_kind_specific_fields() {
        let mut a = AuditLedger::new(4, 16);
        a.record_sample(Time::from_millis(5), 1, 2, 7, 4);
        a.record_decision(Time::from_millis(6), 1, decision(32, 64));
        let recs: Vec<&AuditRecord> = a.records().collect();
        let s = recs[0].to_json();
        assert_eq!(s.get("kind").and_then(|v| v.as_str()), Some("sample"));
        assert_eq!(s.get("estimate").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(s.get("truth").and_then(|v| v.as_u64()), Some(4));
        let d = recs[1].to_json();
        assert_eq!(d.get("kind").and_then(|v| v.as_str()), Some("increase"));
        assert_eq!(d.get("cw_after").and_then(|v| v.as_u64()), Some(64));
        assert_eq!(d.get("avg").and_then(|v| v.as_f64()), Some(25.0));
    }

    #[test]
    fn sink_streams_one_line_per_record() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let mut a = AuditLedger::new(4, 16);
        a.set_sink(Box::new(buf.clone()));
        a.record_sample(Time::ZERO, 1, 2, 3, 3);
        a.record_decision(Time::ZERO, 1, decision(32, 64));
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().next().unwrap().contains("\"kind\":\"sample\""));
    }
}
