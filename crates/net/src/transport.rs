//! Flow transports: how a flow's source paces itself.
//!
//! The paper's workload is open-loop CBR, but the harness also models a
//! closed-loop fixed-window transport (TCP-like self-clocking). Both are
//! implementations of one small trait, [`FlowTransport`], so the engine
//! dispatches pacing decisions without knowing which discipline a flow
//! runs — and a future retransmitting transport is a third impl, not a
//! new `match` arm in the event loop.
//!
//! The transport talks back to the engine through [`TransportCtx`]:
//! `send` creates one packet at a source and offers it to the interface
//! queue (the engine's packet factory), `now` reads the simulated clock.
//! Transports are deliberately *passive* otherwise — they cannot touch
//! the scheduler, the channel or the MAC, which keeps the layering
//! one-directional: engine → transport → (via ctx) engine packet entry.

use std::collections::BTreeMap;

use ezflow_sim::{Duration, SimRng, Time};

use crate::network::Network;
use crate::topo::FlowSpec;
use crate::traffic::Transport;

/// Flow ids at or above this offset are internal transport-ACK streams of
/// windowed flows (ack flow id = `TRANSPORT_ACK_FLOW + data flow id`);
/// they carry no user payload and are excluded from the user metrics.
pub const TRANSPORT_ACK_FLOW: u32 = 1 << 24;

/// What a transport may ask of the engine.
///
/// Implemented by [`Network`]; a trait (rather than `&mut Network`) so
/// the transport surface is explicit and mockable.
pub trait TransportCtx {
    /// Current simulated time.
    fn now(&self) -> Time;

    /// Creates one data packet of `flow` at `src` bound for `dst` and
    /// offers it to the source's own-traffic queue. `ack_ref` is the
    /// data sequence number a transport ACK releases (0 for data).
    /// Returns the packet's sequence number.
    fn send(&mut self, flow: u32, src: usize, dst: usize, payload: u32, ack_ref: u64) -> u64;
}

/// One flow's pacing discipline.
///
/// All methods are callbacks from the engine's event loop; the default
/// bodies describe a purely open-loop transport, so an implementation
/// only overrides what its feedback loop needs.
pub trait FlowTransport: Send {
    /// Called at every source generation tick while the flow is active
    /// (the CBR interval clocks the ticks for every transport kind).
    fn on_tick(&mut self, ctx: &mut dyn TransportCtx);

    /// If `Some(p)`, the engine delivers [`FlowTransport::on_refresh`]
    /// every `p`, starting at flow start + `p`. `None` (the default)
    /// means no periodic transport timer at all.
    fn refresh_period(&self) -> Option<Duration> {
        None
    }

    /// Periodic transport timer (credit timeouts, future retransmission
    /// timers). Returns `true` to keep the timer armed.
    fn on_refresh(&mut self, _ctx: &mut dyn TransportCtx) -> bool {
        false
    }

    /// A data packet of this flow reached its final destination; `seq`
    /// is its sequence number. Called *after* the user metrics recorded
    /// the delivery.
    fn on_data_delivered(&mut self, _ctx: &mut dyn TransportCtx, _seq: u64) {}

    /// A transport ACK of this flow made it back to the source;
    /// `ack_ref` names the data packet it releases.
    fn on_ack_delivered(&mut self, _ctx: &mut dyn TransportCtx, _ack_ref: u64) {}
}

/// Open-loop constant bit rate (the paper's workload): one packet per
/// tick, no feedback whatsoever.
pub struct CbrFlow {
    flow: u32,
    src: usize,
    dst: usize,
    payload: u32,
}

impl FlowTransport for CbrFlow {
    fn on_tick(&mut self, ctx: &mut dyn TransportCtx) {
        ctx.send(self.flow, self.src, self.dst, self.payload, 0);
    }
}

/// Closed-loop fixed-window transport: at most `window` data packets in
/// flight; the sink returns a small end-to-end ACK packet (routed hop by
/// hop over the reverse path) that releases the next one. Lost packets
/// are written off by a credit timeout — no retransmission.
pub struct WindowedFlow {
    flow: u32,
    src: usize,
    dst: usize,
    window: usize,
    payload: u32,
    ack_payload: u32,
    stop: Time,
    /// Outstanding data packets: seq -> send time. A `BTreeMap` so the
    /// RTO write-off walks packets in sequence order — write-off order
    /// (and thus counter/trace order) is a pure function of the seed.
    outstanding: BTreeMap<u64, Time>,
    /// Credit timeout: an unacked packet older than this is written off.
    rto: Duration,
}

impl WindowedFlow {
    /// Tops the flow up to its window, while it is active.
    fn fill(&mut self, ctx: &mut dyn TransportCtx) {
        while ctx.now() < self.stop && self.outstanding.len() < self.window {
            let seq = ctx.send(self.flow, self.src, self.dst, self.payload, 0);
            self.outstanding.insert(seq, ctx.now());
        }
    }
}

impl FlowTransport for WindowedFlow {
    fn on_tick(&mut self, ctx: &mut dyn TransportCtx) {
        self.fill(ctx);
    }

    fn refresh_period(&self) -> Option<Duration> {
        Some(Duration::from_secs(1))
    }

    /// Credit timeout: write off outstanding packets older than the RTO
    /// (lost in the network; this transport does not retransmit).
    fn on_refresh(&mut self, ctx: &mut dyn TransportCtx) -> bool {
        let now = ctx.now();
        let rto = self.rto;
        self.outstanding
            .retain(|_, &mut sent| now.saturating_since(sent) < rto);
        self.fill(ctx);
        ctx.now() < self.stop
    }

    /// The sink acknowledges end-to-end: a small ACK packet travels the
    /// reverse path like any other traffic.
    fn on_data_delivered(&mut self, ctx: &mut dyn TransportCtx, seq: u64) {
        ctx.send(
            self.flow + TRANSPORT_ACK_FLOW,
            self.dst,
            self.src,
            self.ack_payload,
            seq,
        );
    }

    /// A credit came home: release it and clock out the next packet.
    fn on_ack_delivered(&mut self, ctx: &mut dyn TransportCtx, ack_ref: u64) {
        self.outstanding.remove(&ack_ref);
        self.fill(ctx);
    }
}

/// Open-loop bursty on-off source: behaves like [`CbrFlow`] during ON
/// periods and stays silent during OFF periods. ON durations come from a
/// bounded Pareto (heavy-tailed, shape `alpha`, mean `mean_on`), OFF
/// durations from an exponential with mean `mean_off` — the classic
/// self-similar traffic generator. All draws come from the flow's own
/// `SimRng` stream, derived (not consumed) from the master seed at build
/// time, so adding an on-off flow never perturbs other flows' draws.
pub struct OnOffFlow {
    flow: u32,
    src: usize,
    dst: usize,
    payload: u32,
    mean_on: Duration,
    mean_off: Duration,
    alpha: f64,
    rng: SimRng,
    /// The phase timeline starts lazily at the first tick (= flow
    /// start), not at build time, so phase draws happen in event order.
    started: bool,
    on: bool,
    /// When the current ON/OFF period ends.
    boundary: Time,
}

/// ON periods are capped at this multiple of the mean: a bounded Pareto,
/// so a single astronomically rare draw cannot freeze a flow ON for the
/// entire run. At `alpha = 1.5` the cap trims the mean by about 5%.
const ON_CAP_FACTOR: f64 = 50.0;

impl OnOffFlow {
    /// Bounded-Pareto ON duration with mean `mean_on`.
    fn draw_on(&mut self) -> Duration {
        // For Pareto(x_m, alpha) the mean is x_m * alpha / (alpha - 1);
        // pick x_m so the (unbounded) mean lands on mean_on.
        let mean = self.mean_on.as_micros() as f64;
        let x_m = mean * (self.alpha - 1.0) / self.alpha;
        let u = self.rng.gen_f64();
        let x = x_m / (1.0 - u).powf(1.0 / self.alpha);
        Duration::from_micros((x.min(mean * ON_CAP_FACTOR)).max(1.0) as u64)
    }

    /// Exponential OFF duration with mean `mean_off`.
    fn draw_off(&mut self) -> Duration {
        let mean = self.mean_off.as_micros() as f64;
        let u = self.rng.gen_f64();
        Duration::from_micros(((-(1.0 - u).ln()) * mean).max(1.0) as u64)
    }

    /// Advances the ON/OFF phase timeline up to `now`.
    fn advance_to(&mut self, now: Time) {
        if !self.started {
            self.started = true;
            self.on = true;
            self.boundary = now + self.draw_on();
        }
        while now >= self.boundary {
            self.on = !self.on;
            let d = if self.on {
                self.draw_on()
            } else {
                self.draw_off()
            };
            self.boundary += d;
        }
    }
}

impl FlowTransport for OnOffFlow {
    fn on_tick(&mut self, ctx: &mut dyn TransportCtx) {
        self.advance_to(ctx.now());
        if self.on {
            ctx.send(self.flow, self.src, self.dst, self.payload, 0);
        }
    }
}

/// Builds the transport implementation a flow spec asks for. `rng` is
/// the flow's private stream; only stochastic transports (on-off) retain
/// it.
pub(crate) fn build_transport(f: &FlowSpec, rng: SimRng) -> Box<dyn FlowTransport> {
    let src = f.path[0];
    let dst = *f.path.last().expect("non-empty path");
    match f.transport {
        Transport::Cbr => Box::new(CbrFlow {
            flow: f.id,
            src,
            dst,
            payload: f.payload_bytes,
        }),
        Transport::Windowed {
            window,
            ack_payload,
        } => Box::new(WindowedFlow {
            flow: f.id,
            src,
            dst,
            window,
            payload: f.payload_bytes,
            ack_payload,
            stop: f.stop,
            outstanding: BTreeMap::new(),
            rto: Duration::from_secs(3),
        }),
        Transport::OnOff {
            mean_on,
            mean_off,
            alpha,
        } => Box::new(OnOffFlow {
            flow: f.id,
            src,
            dst,
            payload: f.payload_bytes,
            mean_on,
            mean_off,
            alpha,
            rng,
            started: false,
            on: false,
            boundary: Time::ZERO,
        }),
    }
}

impl Network {
    /// Runs `f` against the transport of `flow` with the network itself
    /// as the transport's context.
    ///
    /// The transport is taken out of the table for the duration of the
    /// call, so `f` may re-enter the network mutably (`ctx.send` feeds
    /// the MAC). Re-entry *for the same flow* would find the slot empty
    /// and no-op — which cannot happen today: `ctx.send` never delivers
    /// a frame synchronously (deliveries only surface from the drain
    /// loop's receive path).
    pub(crate) fn with_transport(
        &mut self,
        flow: u32,
        f: impl FnOnce(&mut dyn FlowTransport, &mut Network),
    ) {
        let Some(idx) = self.transports.iter().position(|&(id, _)| id == flow) else {
            return;
        };
        let Some(mut t) = self.transports[idx].1.take() else {
            return;
        };
        f(t.as_mut(), self);
        self.transports[idx].1 = Some(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted context: records sends, plays back a fixed clock.
    struct Recorder {
        now: Time,
        next_seq: u64,
        sent: Vec<(u32, usize, usize, u32, u64)>,
    }

    impl TransportCtx for Recorder {
        fn now(&self) -> Time {
            self.now
        }
        fn send(&mut self, flow: u32, src: usize, dst: usize, payload: u32, ack_ref: u64) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.sent.push((flow, src, dst, payload, ack_ref));
            seq
        }
    }

    fn windowed(window: usize) -> WindowedFlow {
        WindowedFlow {
            flow: 0,
            src: 0,
            dst: 3,
            window,
            payload: 1000,
            ack_payload: 40,
            stop: Time::from_secs(100),
            outstanding: BTreeMap::new(),
            rto: Duration::from_secs(3),
        }
    }

    #[test]
    fn cbr_sends_one_packet_per_tick() {
        let mut ctx = Recorder {
            now: Time::ZERO,
            next_seq: 0,
            sent: Vec::new(),
        };
        let mut t = CbrFlow {
            flow: 7,
            src: 1,
            dst: 4,
            payload: 1000,
        };
        t.on_tick(&mut ctx);
        t.on_tick(&mut ctx);
        assert_eq!(ctx.sent, vec![(7, 1, 4, 1000, 0), (7, 1, 4, 1000, 0)]);
        assert_eq!(t.refresh_period(), None, "CBR needs no transport timer");
    }

    #[test]
    fn window_fills_to_cap_and_acks_release_credits() {
        let mut ctx = Recorder {
            now: Time::ZERO,
            next_seq: 0,
            sent: Vec::new(),
        };
        let mut t = windowed(4);
        t.on_tick(&mut ctx);
        assert_eq!(ctx.sent.len(), 4, "fills straight to the window");
        t.on_tick(&mut ctx);
        assert_eq!(ctx.sent.len(), 4, "window full: no further sends");

        // The sink's delivery callback emits the reverse-path ACK.
        t.on_data_delivered(&mut ctx, 0);
        let ack = *ctx.sent.last().unwrap();
        assert_eq!(ack, (TRANSPORT_ACK_FLOW, 3, 0, 40, 0));

        // The ACK coming home releases one credit.
        t.on_ack_delivered(&mut ctx, 0);
        assert_eq!(t.outstanding.len(), 4, "refilled to the window");
        assert_eq!(ctx.sent.len(), 6, "one data packet clocked out");
    }

    #[test]
    fn refresh_writes_off_old_packets_in_seq_order() {
        let mut ctx = Recorder {
            now: Time::ZERO,
            next_seq: 0,
            sent: Vec::new(),
        };
        let mut t = windowed(3);
        t.on_tick(&mut ctx);
        assert_eq!(t.outstanding.len(), 3);

        // Past the RTO: everything outstanding is written off and the
        // window refills at the new instant.
        ctx.now = Time::from_secs(5);
        assert!(t.on_refresh(&mut ctx), "flow still active: keep the timer");
        assert_eq!(t.outstanding.len(), 3);
        assert!(t.outstanding.values().all(|&s| s == Time::from_secs(5)));

        // After stop the timer asks to be disarmed.
        ctx.now = Time::from_secs(100);
        assert!(!t.on_refresh(&mut ctx));
    }

    #[test]
    fn write_off_order_is_deterministic() {
        // The BTreeMap guarantees the retain walk visits sequence
        // numbers in order — the determinism fix for the RTO path.
        let t = windowed(8);
        let keys: Vec<u64> = t.outstanding.keys().copied().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    fn onoff(seed: u64) -> OnOffFlow {
        OnOffFlow {
            flow: 0,
            src: 0,
            dst: 3,
            payload: 1000,
            mean_on: Duration::from_secs(1),
            mean_off: Duration::from_secs(1),
            alpha: 1.5,
            rng: SimRng::new(seed),
            started: false,
            on: false,
            boundary: Time::ZERO,
        }
    }

    /// Drives `t` at the 4 ms CBR tick for `secs` of simulated time and
    /// returns the fraction of ticks that produced a packet.
    fn duty_cycle(t: &mut OnOffFlow, secs: u64) -> f64 {
        let mut ctx = Recorder {
            now: Time::ZERO,
            next_seq: 0,
            sent: Vec::new(),
        };
        let tick = Duration::from_millis(4);
        let ticks = secs * 250;
        for _ in 0..ticks {
            t.on_tick(&mut ctx);
            ctx.now += tick;
        }
        ctx.sent.len() as f64 / ticks as f64
    }

    #[test]
    fn onoff_mean_offered_load_tracks_duty_cycle() {
        // mean_on = mean_off ⇒ nominal duty cycle 1/2, i.e. offered load
        // = rate/2. The Pareto bound trims the ON mean by ~5% at
        // alpha = 1.5; ±15% comfortably covers trim plus sampling noise
        // over 4000 s while still catching a broken generator (which
        // lands near 0 or 1).
        let duty = duty_cycle(&mut onoff(11), 4000);
        assert!(
            (duty - 0.5).abs() < 0.075,
            "duty cycle {duty:.3} strayed from nominal 0.5"
        );
    }

    #[test]
    fn onoff_alternates_on_and_off_periods() {
        let mut t = onoff(3);
        let duty = duty_cycle(&mut t, 100);
        assert!(duty > 0.0 && duty < 1.0, "must both send and pause");
        assert!(t.started);
    }

    #[test]
    fn onoff_is_deterministic_per_seed() {
        let (a, b) = (
            duty_cycle(&mut onoff(7), 200),
            duty_cycle(&mut onoff(7), 200),
        );
        assert_eq!(a, b, "same seed ⇒ identical phase timeline");
        let c = duty_cycle(&mut onoff(8), 200);
        assert_ne!(a, c, "different seed ⇒ different timeline");
    }
}
