//! Constant-bit-rate traffic sources.
//!
//! §5.1: *"To ensure that the systems run in saturated mode, we generate at
//! the source a Constant Bit Rate (CBR) traffic at a rate of 2 Mb/s."* —
//! i.e. deliberately more than the 1 Mb/s channel can carry, so the source
//! queue is always backlogged and the MAC, not the application, paces the
//! flow.

use ezflow_sim::{Duration, Time};

/// How a flow's source paces itself.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Transport {
    /// Open-loop constant bit rate (the paper's workload: UDP-like, no
    /// feedback whatsoever).
    #[default]
    Cbr,
    /// Closed-loop fixed-window transport: at most `window` data packets
    /// are in flight; the sink returns a small end-to-end ACK packet
    /// (routed hop-by-hop over the reverse path) that releases the next
    /// one. A minimal stand-in for TCP's self-clocking — no
    /// retransmission or congestion control, just window flow control
    /// (lost packets are written off by a credit timeout).
    Windowed {
        /// Maximum packets in flight.
        window: usize,
        /// Transport-ACK payload bytes (a real TCP ACK is ~40).
        ack_payload: u32,
    },
    /// Open-loop bursty on-off source: CBR at `rate_bps` during ON
    /// periods, silent during OFF periods. ON durations are drawn from a
    /// bounded Pareto (heavy-tailed, shape `alpha`) with mean `mean_on`,
    /// OFF durations from an exponential with mean `mean_off` — the
    /// classic self-similar-traffic generator. All draws come from a
    /// per-flow `SimRng` stream derived at build time, so runs stay a
    /// pure function of `(spec, seed)`.
    OnOff {
        /// Mean ON-period duration.
        mean_on: Duration,
        /// Mean OFF-period duration.
        mean_off: Duration,
        /// Pareto shape for ON durations; must exceed 1 so the mean
        /// exists. Smaller ⇒ heavier tail (longer rare bursts).
        alpha: f64,
    },
}

/// A CBR source description. `Copy` (5 words) so the per-tick hot path
/// reads it without cloning through the heap.
#[derive(Clone, Copy, Debug)]
pub struct CbrSource {
    /// Flow id (index into the network's flow table).
    pub flow: u32,
    /// Source node.
    pub src: usize,
    /// Final destination node.
    pub dst: usize,
    /// Application rate in bits/s.
    pub rate_bps: u64,
    /// Transport payload per packet, bytes.
    pub payload_bytes: u32,
    /// First packet is generated at `start`.
    pub start: Time,
    /// No packets are generated at or after `stop`.
    pub stop: Time,
}

impl CbrSource {
    /// Inter-packet interval.
    pub fn interval(&self) -> Duration {
        debug_assert!(self.rate_bps > 0);
        let bits = self.payload_bytes as u64 * 8;
        // Round to nearest microsecond; CBR at 2 Mb/s with 1000 B packets
        // is exactly 4 ms.
        Duration::from_micros((bits * 1_000_000 + self.rate_bps / 2) / self.rate_bps)
    }

    /// Whether the source is active at `now` (generation instant).
    pub fn active_at(&self, now: Time) -> bool {
        now >= self.start && now < self.stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cbr(rate: u64) -> CbrSource {
        CbrSource {
            flow: 0,
            src: 0,
            dst: 4,
            rate_bps: rate,
            payload_bytes: 1000,
            start: Time::from_secs(5),
            stop: Time::from_secs(10),
        }
    }

    #[test]
    fn paper_cbr_interval_is_4ms() {
        assert_eq!(cbr(2_000_000).interval(), Duration::from_millis(4));
    }

    #[test]
    fn interval_rounds_to_nearest_us() {
        // 8000 bits at 3 Mb/s = 2666.67 µs -> 2667.
        assert_eq!(cbr(3_000_000).interval(), Duration::from_micros(2667));
    }

    #[test]
    fn activity_window_is_half_open() {
        let s = cbr(2_000_000);
        assert!(!s.active_at(Time::from_micros(4_999_999)));
        assert!(s.active_at(Time::from_secs(5)));
        assert!(s.active_at(Time::from_micros(9_999_999)));
        assert!(!s.active_at(Time::from_secs(10)));
    }
}
