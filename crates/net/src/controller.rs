//! The flow-controller interface.
//!
//! A [`Controller`] is the per-node program that EZ-flow (and each baseline
//! we compare against) runs beside the MAC. Its only actuator is the MAC's
//! `CWmin`; its only sensors are the events the network layer feeds it:
//!
//! * [`ControllerEvent::SentToSuccessor`] — one of our data frames was
//!   acknowledged by the successor (it verifiably entered the successor's
//!   queue). This is the BOE's *"transmission of packet p to N_{k+1}"*
//!   hook: on the testbed the second radio sniffs the node's own frames;
//!   in the simulator the ACK plays that role, filtering out frames that
//!   were dropped before reaching the air exactly as the paper requires.
//! * [`ControllerEvent::Overheard`] — a clean data frame not addressed to
//!   us was decoded; the broadcast medium gives it to us for free. The BOE
//!   filters for frames *sent by our successor*.
//! * [`ControllerEvent::NeighborBacklog`] — an explicit backlog report.
//!   **EZ-flow never receives these.** They exist so that message-passing
//!   baselines (DiffQ) can be expressed in the same harness; the network
//!   layer only generates them for controllers that ask via
//!   [`Controller::backlog_period`].
//!
//! Returning `Some(cw)` from [`Controller::on_event`] reprograms the MAC's
//! minimum contention window — the moral equivalent of the testbed's
//! `iwconfig ath0 cwmin <v>` call.

use ezflow_phy::Frame;
use ezflow_sim::{Duration, Time};

/// An observation delivered to a node's controller.
#[derive(Debug)]
pub enum ControllerEvent<'a> {
    /// A data frame of ours was acknowledged by `successor`.
    SentToSuccessor {
        /// The next-hop that just accepted the frame.
        successor: usize,
        /// The acknowledged frame.
        frame: &'a Frame,
    },
    /// A clean data frame addressed to another node was overheard.
    Overheard {
        /// The overheard frame (its `src` is the transmitter).
        frame: &'a Frame,
    },
    /// Explicit queue-size report from a neighbour (message-passing
    /// baselines only).
    NeighborBacklog {
        /// Reporting neighbour.
        neighbor: usize,
        /// Its total interface-queue backlog, packets.
        backlog: usize,
        /// This node's own backlog at the same instant (locally known).
        own_backlog: usize,
    },
}

/// A boxed per-node controller factory — what [`crate::Network::new`]
/// takes, aliased because the full type is a mouthful. `Send + Sync` so
/// one factory can be shared with sweep-runner worker threads.
pub type ControllerFactory = Box<dyn Fn(usize) -> Box<dyn Controller> + Send + Sync>;

/// What kind of window move a [`DecisionRecord`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// The window was doubled (CAA over-utilization).
    Increase,
    /// The window was halved (CAA under-utilization).
    Decrease,
    /// The window was set outright (baselines: a DiffQ band change, or a
    /// static-penalty assignment at build time).
    Assign,
}

impl DecisionKind {
    /// Stable lowercase name for exports.
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Increase => "increase",
            DecisionKind::Decrease => "decrease",
            DecisionKind::Assign => "assign",
        }
    }
}

/// One `CWmin` decision with the inputs that produced it — the payload of
/// the audit ledger (see [`crate::audit`]). Copy on purpose: recording one
/// is a few word stores, cheap enough to capture unconditionally inside
/// controllers; the engine only *takes* them when the audit is armed.
///
/// For CAA decisions the fields mirror Algorithm 1's state: the averaged
/// estimate, the hysteresis charge *entering* the round (a fired decision
/// means the round charged it to its threshold), and the two charge
/// thresholds computed from the window at round entry. Baselines without
/// that structure leave the counters/thresholds at zero and use
/// [`DecisionKind::Assign`]; `avg` then carries the controller's own
/// driving quantity (DiffQ: the backlog differential).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecisionRecord {
    /// Kind of window move.
    pub kind: DecisionKind,
    /// Successor whose state drove the decision, when the controller keeps
    /// per-successor state (`None` for node-global assignments).
    pub successor: Option<usize>,
    /// The driving quantity: averaged BOE estimate for CAA, backlog
    /// differential for DiffQ, the assigned window for static penalties.
    pub avg: f64,
    /// Over-utilization charge entering the round (CAA only).
    pub countup: u32,
    /// Under-utilization charge entering the round (CAA only).
    pub countdown: u32,
    /// Rounds of charge needed to double, from the window at round entry
    /// (CAA: `log2(cw_before)`).
    pub up_threshold: u32,
    /// Rounds of charge needed to halve (CAA: `15 − log2(cw_before)`).
    pub down_threshold: u32,
    /// `CWmin` before the decision.
    pub cw_before: u32,
    /// `CWmin` after the decision.
    pub cw_after: u32,
}

/// Observability counters a controller can export for run snapshots.
/// The field names follow EZ-flow's two mechanisms; algorithms without a
/// BOE/CAA decomposition simply leave the counters at zero (the default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerCounters {
    /// Buffer-estimator samples successfully matched to a sent frame.
    pub boe_hits: u64,
    /// Overheard forwards whose checksum matched nothing (sampling loss).
    pub boe_misses: u64,
    /// Checksum matches that were ambiguous (several candidates; the most
    /// recent was used).
    pub boe_ambiguous: u64,
    /// Adaptation rounds that raised the contention window.
    pub caa_increases: u64,
    /// Adaptation rounds that lowered the contention window.
    pub caa_decreases: u64,
    /// Adaptation rounds that left the contention window unchanged.
    pub caa_holds: u64,
}

/// A per-node flow-control algorithm.
///
/// `Send` is a supertrait: a controller is owned by its node and crosses
/// thread boundaries together with the whole [`crate::Network`] when a
/// sweep runner fans independent runs across workers. Controllers are
/// plain state machines, so the bound is free — it exists to keep
/// `Box<dyn Controller>` (and therefore `Network`) `Send`.
pub trait Controller: Send {
    /// Handles one observation; optionally returns a new `CWmin` for this
    /// node's MAC.
    fn on_event(&mut self, now: Time, event: ControllerEvent<'_>) -> Option<u32>;

    /// Algorithm name for logs and experiment tables.
    fn name(&self) -> &'static str;

    /// `CWmin` to program into the MAC when the network is built, if the
    /// algorithm wants something other than the 802.11 default.
    fn initial_cw_min(&self) -> Option<u32> {
        None
    }

    /// If `Some(p)`, the network delivers [`ControllerEvent::NeighborBacklog`]
    /// reports from this node's successors every `p`. `None` (the default,
    /// and EZ-flow's value) means no message passing whatsoever.
    fn backlog_period(&self) -> Option<Duration> {
        None
    }

    /// Per-successor window override (the §7 extension: one `CWmin` per
    /// successor, as the four 802.11e hardware queues would provide).
    /// When this returns `Some(cw)` for the successor of the frame about
    /// to be handed to the MAC, the network programs that window for the
    /// frame's contention instead of the node-global one. The default
    /// (`None`) keeps a single window per node, which is all the paper's
    /// line topologies need.
    fn queue_window(&self, _successor: usize) -> Option<u32> {
        None
    }

    /// Counters for run snapshots. The default (all zero) suits
    /// controllers with no estimator/adaptation machinery.
    fn counters(&self) -> ControllerCounters {
        ControllerCounters::default()
    }

    /// Takes (and clears) the provenance record of a window decision made
    /// by the most recent [`Controller::on_event`] call, if any. The
    /// engine polls this only when the audit ledger is armed; controllers
    /// without decision machinery keep the default `None`.
    fn take_decision(&mut self) -> Option<DecisionRecord> {
        None
    }

    /// Takes (and clears) the `(successor, estimated_occupancy)` produced
    /// by the most recent [`Controller::on_event`] call, if the event was
    /// an overheard forward that yielded a buffer estimate. Polled by the
    /// engine only when the audit ledger is armed, at which point it pairs
    /// the estimate with the successor's true queue depth.
    fn take_estimate(&mut self) -> Option<(usize, u32)> {
        None
    }
}

/// Plain IEEE 802.11: a fixed `CWmin`, never adapted. With the default
/// window this is the paper's baseline; with a hand-picked per-node window
/// it expresses the static penalty strategy of \[Aziz09\] (`q` = relay
/// window / source window).
#[derive(Debug, Clone)]
pub struct FixedController {
    cw_min: Option<u32>,
}

impl FixedController {
    /// Standard 802.11: keep the MAC's default window.
    pub fn standard() -> Self {
        FixedController { cw_min: None }
    }

    /// Pin `CWmin` to `cw_min` (the static penalty baseline).
    pub fn pinned(cw_min: u32) -> Self {
        assert!(cw_min >= 1);
        FixedController {
            cw_min: Some(cw_min),
        }
    }
}

impl Controller for FixedController {
    fn on_event(&mut self, _now: Time, _event: ControllerEvent<'_>) -> Option<u32> {
        None
    }

    fn initial_cw_min(&self) -> Option<u32> {
        self.cw_min
    }

    fn name(&self) -> &'static str {
        "802.11"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::data(1, 0, 0, 4, 1000, Time::ZERO)
    }

    #[test]
    fn standard_controller_never_adapts() {
        let mut c = FixedController::standard();
        let f = frame();
        for _ in 0..10 {
            assert_eq!(
                c.on_event(Time::ZERO, ControllerEvent::Overheard { frame: &f }),
                None
            );
        }
        assert_eq!(c.backlog_period(), None);
        assert_eq!(c.initial_cw_min(), None);
        assert_eq!(c.name(), "802.11");
    }

    #[test]
    fn pinned_controller_sets_initial_window() {
        let mut c = FixedController::pinned(2048);
        assert_eq!(c.initial_cw_min(), Some(2048));
        let f = frame();
        assert_eq!(
            c.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 1,
                    frame: &f
                }
            ),
            None
        );
    }
}
