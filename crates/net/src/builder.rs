//! Spec → network construction.
//!
//! [`NetworkSpec`] is the static, `Clone`-able description of a network
//! (positions, channel, loss, MAC parameters, flows, seed); this module
//! turns one into a runnable [`Network`]: derives the per-node RNG
//! streams, installs routes (including reverse paths for windowed
//! flows), creates the interface queues the paper's queue discipline
//! asks for, builds each flow's [`crate::transport::FlowTransport`], and
//! schedules the initial events. Being plain data, a spec can be built
//! once and shipped across threads — the sweep runner in `ezflow-bench`
//! leans on exactly that.

use std::collections::VecDeque;

use ezflow_mac::{Mac, MacConfig, MacInput};
use ezflow_phy::{Channel, ChannelConfig, LossModel, Position};
use ezflow_sim::{Duration, SchedKind, Scheduler, SimRng, Time, TraceRing};

use crate::controller::Controller;
use crate::engine::{Ev, EV_KINDS, PROFILE_KINDS};
use crate::metrics::Metrics;
use crate::network::Network;
use crate::node::Node;
use crate::routing::StaticRouting;
use crate::telemetry::Telemetry;
use crate::topo::{FlowSpec, Topology};
use crate::traffic::{CbrSource, Transport};
use crate::transport::{build_transport, FlowTransport};

/// Static description of a network to build.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Node positions.
    pub positions: Vec<Position>,
    /// Channel geometry parameters.
    pub channel: ChannelConfig,
    /// Link loss process.
    pub loss: LossModel,
    /// MAC parameters.
    pub mac: MacConfig,
    /// Interface queue capacity, packets (the paper's hardware: 50).
    pub queue_cap: usize,
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Metric sampling period for buffer/cw traces.
    pub sample_every: Duration,
    /// Throughput bin width for the metric series.
    pub metric_bin: Duration,
    /// Master random seed.
    pub seed: u64,
    /// Trace ring capacity (0 disables tracing).
    pub trace_cap: usize,
    /// Flight-recorder capacity in packet journeys (0 disables the
    /// recorder; see [`crate::flight::FlightRecorder`]).
    pub flight_cap: usize,
    /// Telemetry sampling interval (`None` disables the telemetry bus —
    /// zero events, zero cost; see [`crate::telemetry`]). The paper-ish
    /// default when armed is 100 ms of simulated time.
    pub telemetry_every: Option<Duration>,
    /// Ring capacity of each telemetry time series, in sample windows.
    pub telemetry_cap: usize,
    /// Engine self-profiler: when set, `run_until` wall-clocks every
    /// handler dispatch per event kind into the perf snapshot's
    /// `handler_ns_by_kind`. Perf-only — never observable in the
    /// deterministic part of a snapshot.
    pub profile: bool,
    /// Scheduler backend. Both produce bit-identical runs (a property
    /// `ezflow-bench`'s equivalence tests pin); the calendar-queue wheel
    /// is the fast default, the heap the reference fallback.
    pub sched: SchedKind,
}

impl NetworkSpec {
    /// Spec from a [`Topology`] with the paper's defaults (including the
    /// 3-hop carrier-sense range [`crate::topo::CS_RANGE`]).
    pub fn from_topology(topo: &Topology, seed: u64) -> Self {
        let channel = ChannelConfig {
            cs_range: crate::topo::CS_RANGE,
            ..ChannelConfig::default()
        };
        NetworkSpec {
            positions: topo.positions.clone(),
            channel,
            loss: topo.loss.clone(),
            mac: MacConfig::default(),
            queue_cap: 50,
            flows: topo.flows.clone(),
            sample_every: Duration::from_secs(1),
            metric_bin: Duration::from_secs(10),
            seed,
            trace_cap: 0,
            flight_cap: 0,
            telemetry_every: None,
            telemetry_cap: 1 << 16,
            profile: false,
            sched: SchedKind::default(),
        }
    }

    /// The default telemetry sampling interval (100 ms of simulated
    /// time) — what `--telemetry-dir` arms unless overridden.
    pub const TELEMETRY_EVERY: Duration = Duration::from_millis(100);

    /// Builds the runnable network this spec describes;
    /// `make_controller` is called once per node. Equivalent to
    /// [`Network::new`].
    pub fn build(self, make_controller: &dyn Fn(usize) -> Box<dyn Controller>) -> Network {
        build(self, make_controller)
    }
}

/// Builds a [`Network`] from its spec (the body of [`Network::new`]).
pub(crate) fn build(
    spec: NetworkSpec,
    make_controller: &dyn Fn(usize) -> Box<dyn Controller>,
) -> Network {
    let n = spec.positions.len();
    let master = SimRng::new(spec.seed);
    let channel = Channel::new(&spec.positions, spec.channel, spec.loss.clone());
    let chan_rng = master.derive(u64::MAX);

    let mut routing = StaticRouting::new();
    for f in &spec.flows {
        routing.install_path(&f.path);
    }

    let mut nodes: Vec<Node> = (0..n)
        .map(|id| {
            Node::new(
                id,
                Mac::new(id, spec.mac),
                make_controller(id),
                master.derive(id as u64),
            )
        })
        .collect();

    // Windowed flows need the reverse path for their end-to-end ACKs.
    for f in &spec.flows {
        if matches!(f.transport, Transport::Windowed { .. }) {
            let mut rev = f.path.clone();
            rev.reverse();
            routing.install_path(&rev);
        }
    }

    // Create the queues each flow needs: an own-traffic queue at the
    // source, a forward queue at every relay (per successor).
    for f in &spec.flows {
        let src = f.path[0];
        let dst = *f.path.last().expect("non-empty path");
        let first_hop = routing.next_hop(src, dst).expect("installed");
        nodes[src].queue_index(true, first_hop, spec.queue_cap);
        for &relay in &f.path[1..f.path.len() - 1] {
            let nh = routing.next_hop(relay, dst).expect("installed");
            nodes[relay].queue_index(false, nh, spec.queue_cap);
        }
        if matches!(f.transport, Transport::Windowed { .. }) {
            // Reverse-direction queues: the sink originates ACKs, the
            // relays forward them toward the source.
            let first_back = routing.next_hop(dst, src).expect("installed");
            nodes[dst].queue_index(true, first_back, spec.queue_cap);
            for &relay in f.path[1..f.path.len() - 1].iter() {
                let nh = routing.next_hop(relay, src).expect("installed");
                nodes[relay].queue_index(false, nh, spec.queue_cap);
            }
        }
    }

    // Program initial contention windows.
    for node in nodes.iter_mut() {
        if let Some(cw) = node.controller.initial_cw_min() {
            let outs = node
                .mac
                .input(Time::ZERO, MacInput::SetCwMin { cw_min: cw }, &mut node.rng);
            debug_assert!(outs.is_empty());
        }
    }

    let sources: Vec<CbrSource> = spec
        .flows
        .iter()
        .map(|f| CbrSource {
            flow: f.id,
            src: f.path[0],
            dst: *f.path.last().expect("non-empty"),
            rate_bps: f.rate_bps,
            payload_bytes: f.payload_bytes,
            start: f.start,
            stop: f.stop,
        })
        .collect();
    let source_intervals: Vec<_> = sources.iter().map(CbrSource::interval).collect();

    let successors: Vec<Vec<usize>> = (0..n).map(|id| routing.successors(id)).collect();
    let backlog_every = nodes
        .iter()
        .filter_map(|nd| nd.controller.backlog_period())
        .min();

    let flow_ids: Vec<u32> = spec.flows.iter().map(|f| f.id).collect();
    let metrics = Metrics::new(n, &flow_ids, spec.metric_bin);

    let transports: Vec<(u32, Option<Box<dyn FlowTransport>>)> = spec
        .flows
        .iter()
        .map(|f| (f.id, Some(build_transport(f))))
        .collect();

    let mut sched = Scheduler::with_kind(spec.sched);
    for (i, s) in sources.iter().enumerate() {
        sched.schedule(s.start, Ev::Traffic(i));
    }
    for (f, (_, t)) in spec.flows.iter().zip(transports.iter()) {
        let t = t.as_ref().expect("transport slot filled at build time");
        if let Some(p) = t.refresh_period() {
            sched.schedule(f.start + p, Ev::WindowRefresh(f.id));
        }
    }
    sched.schedule(Time::ZERO + spec.sample_every, Ev::Sample);
    if let Some(p) = backlog_every {
        sched.schedule(Time::ZERO + p, Ev::Backlog);
    }
    // The telemetry sampler is armed *last*: with its entry resident at
    // every subsequent push, the scheduler's depth high-water mark runs
    // exactly one above the telemetry-off run's, which is what the
    // snapshot compensation subtracts (see `Network::snapshot`).
    let mut telemetry = Telemetry::new(n, &flow_ids, spec.telemetry_every, spec.telemetry_cap);
    if telemetry.enabled() {
        sched.schedule(Time::ZERO + telemetry.every(), Ev::Telemetry);
        telemetry.note_push();
    }

    Network {
        now: Time::ZERO,
        sched,
        channel,
        chan_rng,
        nodes,
        routing,
        sources,
        source_intervals,
        successors,
        transports,
        queue_cap: spec.queue_cap,
        eifs: spec.mac.eifs,
        sample_every: spec.sample_every,
        backlog_every,
        metrics,
        trace: TraceRing::new(spec.trace_cap),
        flight: crate::flight::FlightRecorder::new(spec.flight_cap),
        telemetry,
        profile: spec.profile,
        handler_ns: [0; PROFILE_KINDS],
        worklist: VecDeque::new(),
        rx_frames: VecDeque::new(),
        next_seq: 0,
        events: 0,
        dispatched: [0; EV_KINDS],
        by_kind_cache: [("", 0); EV_KINDS],
        start_report: ezflow_phy::StartReport::default(),
        end_report: ezflow_phy::EndReport::default(),
        mac_out_pool: Vec::new(),
        wall: std::time::Duration::ZERO,
    }
}
