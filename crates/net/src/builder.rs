//! Spec → network construction.
//!
//! [`NetworkSpec`] is the static, `Clone`-able description of a network
//! (positions, channel, loss, MAC parameters, flows, seed); this module
//! turns one into a runnable [`Network`]: derives the per-node RNG
//! streams, installs routes (including reverse paths for windowed
//! flows), creates the interface queues the paper's queue discipline
//! asks for, builds each flow's [`crate::transport::FlowTransport`], and
//! schedules the initial events. Being plain data, a spec can be built
//! once and shipped across threads — the sweep runner in `ezflow-bench`
//! leans on exactly that.

use std::collections::VecDeque;

use ezflow_mac::{Mac, MacConfig, MacInput};
use ezflow_phy::{Channel, ChannelConfig, LossModel, Position};
use ezflow_sim::{Duration, SchedKind, ShardedScheduler, SimRng, Time, TraceRing};

use crate::controller::Controller;
use crate::engine::{Ev, EV_KINDS, PROFILE_KINDS};
use crate::metrics::Metrics;
use crate::network::Network;
use crate::node::Node;
use crate::routing::StaticRouting;
use crate::telemetry::Telemetry;
use crate::topo::{FlowSpec, Topology};
use crate::traffic::{CbrSource, Transport};
use crate::transport::{build_transport, FlowTransport};

/// Why a [`NetworkSpec`] (or the [`Topology`] it came from) cannot be
/// built — typed instead of an index panic deep inside construction, so
/// both the scenario loader and hand-built constructors surface the
/// same early, pointed diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// No nodes at all.
    EmptyTopology,
    /// A node position is NaN or infinite.
    NonFinitePosition {
        /// The offending node.
        node: usize,
    },
    /// The interface queue capacity is zero (nothing could ever send).
    ZeroQueueCap,
    /// A flow path has fewer than two nodes.
    ShortPath {
        /// The offending flow.
        flow: u32,
    },
    /// A flow path names a node the topology does not have.
    NodeOutOfBounds {
        /// The offending flow.
        flow: u32,
        /// The out-of-range node id.
        node: usize,
    },
    /// A flow path visits the same node twice (a routing loop).
    RepeatedNode {
        /// The offending flow.
        flow: u32,
        /// The repeated node id.
        node: usize,
    },
    /// Two consecutive hops are farther apart than the decode range.
    UndecodableHop {
        /// The offending flow.
        flow: u32,
        /// Transmitting hop.
        a: usize,
        /// Receiving hop.
        b: usize,
        /// Their distance in meters.
        dist: f64,
    },
    /// Two flows share an id (metrics are keyed by flow id).
    DuplicateFlowId {
        /// The duplicated id.
        id: u32,
    },
    /// A flow id collides with the internal transport-ACK id space.
    ReservedFlowId {
        /// The offending id (≥ [`TRANSPORT_ACK_FLOW`](crate::transport::TRANSPORT_ACK_FLOW)).
        id: u32,
    },
    /// A flow's rate is zero (the tick interval would be undefined).
    ZeroRate {
        /// The offending flow.
        flow: u32,
    },
    /// A flow's payload is zero bytes.
    ZeroPayload {
        /// The offending flow.
        flow: u32,
    },
    /// A windowed transport with a zero window can never send.
    ZeroWindow {
        /// The offending flow.
        flow: u32,
    },
    /// An on-off transport with a non-heavy-tail-able shape or a zero
    /// mean period.
    BadOnOff {
        /// The offending flow.
        flow: u32,
        /// What exactly is wrong.
        why: &'static str,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyTopology => write!(f, "topology has no nodes"),
            SpecError::NonFinitePosition { node } => {
                write!(f, "node {node} has a non-finite position")
            }
            SpecError::ZeroQueueCap => write!(f, "queue_cap must be nonzero"),
            SpecError::ShortPath { flow } => {
                write!(f, "flow {flow}: path needs at least two nodes")
            }
            SpecError::NodeOutOfBounds { flow, node } => {
                write!(f, "flow {flow}: path node {node} is out of bounds")
            }
            SpecError::RepeatedNode { flow, node } => {
                write!(f, "flow {flow}: path visits node {node} twice")
            }
            SpecError::UndecodableHop { flow, a, b, dist } => write!(
                f,
                "flow {flow}: hop {a}->{b} is undecodable ({dist:.0} m apart)"
            ),
            SpecError::DuplicateFlowId { id } => write!(f, "duplicate flow id {id}"),
            SpecError::ReservedFlowId { id } => write!(
                f,
                "flow id {id} collides with the transport-ACK id space (>= {})",
                crate::transport::TRANSPORT_ACK_FLOW
            ),
            SpecError::ZeroRate { flow } => write!(f, "flow {flow}: rate_bps must be nonzero"),
            SpecError::ZeroPayload { flow } => {
                write!(f, "flow {flow}: payload_bytes must be nonzero")
            }
            SpecError::ZeroWindow { flow } => {
                write!(f, "flow {flow}: window must be nonzero")
            }
            SpecError::BadOnOff { flow, why } => write!(f, "flow {flow}: {why}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Static description of a network to build.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Node positions.
    pub positions: Vec<Position>,
    /// Channel geometry parameters.
    pub channel: ChannelConfig,
    /// Link loss process.
    pub loss: LossModel,
    /// MAC parameters.
    pub mac: MacConfig,
    /// Interface queue capacity, packets (the paper's hardware: 50).
    pub queue_cap: usize,
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Metric sampling period for buffer/cw traces.
    pub sample_every: Duration,
    /// Throughput bin width for the metric series.
    pub metric_bin: Duration,
    /// Master random seed.
    pub seed: u64,
    /// Trace ring capacity (0 disables tracing).
    pub trace_cap: usize,
    /// Flight-recorder capacity in packet journeys (0 disables the
    /// recorder; see [`crate::flight::FlightRecorder`]).
    pub flight_cap: usize,
    /// Telemetry sampling interval (`None` disables the telemetry bus —
    /// zero events, zero cost; see [`crate::telemetry`]). The paper-ish
    /// default when armed is 100 ms of simulated time.
    pub telemetry_every: Option<Duration>,
    /// Ring capacity of each telemetry time series, in sample windows.
    pub telemetry_cap: usize,
    /// Audit-ledger ring capacity in records (0 disables the controller
    /// provenance audit — one branch per probe site, zero cost; see
    /// [`crate::audit`]).
    pub audit_cap: usize,
    /// Engine self-profiler: when set, `run_until` wall-clocks every
    /// handler dispatch per event kind into the perf snapshot's
    /// `handler_ns_by_kind`. Perf-only — never observable in the
    /// deterministic part of a snapshot.
    pub profile: bool,
    /// Scheduler backend. Both produce bit-identical runs (a property
    /// `ezflow-bench`'s equivalence tests pin); the calendar-queue wheel
    /// is the fast default, the heap the reference fallback.
    pub sched: SchedKind,
    /// Scheduler shards: the node set is partitioned into this many
    /// interference-domain groups ([`crate::partition`]), one backend
    /// queue each, merged back into the exact serial event order — a
    /// sharded run's snapshot is byte-identical to the serial run's
    /// (pinned by tests and `hotpath_bench --check`). `0` and `1` both
    /// mean serial; values above the node count clamp down to it.
    pub shards: usize,
}

impl NetworkSpec {
    /// Spec from a [`Topology`] with the paper's defaults (including the
    /// 3-hop carrier-sense range [`crate::topo::CS_RANGE`]).
    pub fn from_topology(topo: &Topology, seed: u64) -> Self {
        let channel = ChannelConfig {
            cs_range: crate::topo::CS_RANGE,
            ..ChannelConfig::default()
        };
        NetworkSpec {
            positions: topo.positions.clone(),
            channel,
            loss: topo.loss.clone(),
            mac: MacConfig::default(),
            queue_cap: 50,
            flows: topo.flows.clone(),
            sample_every: Duration::from_secs(1),
            metric_bin: Duration::from_secs(10),
            seed,
            trace_cap: 0,
            flight_cap: 0,
            telemetry_every: None,
            telemetry_cap: 1 << 16,
            audit_cap: 0,
            profile: false,
            sched: SchedKind::default(),
            shards: 1,
        }
    }

    /// The default telemetry sampling interval (100 ms of simulated
    /// time) — what `--telemetry-dir` arms unless overridden.
    pub const TELEMETRY_EVERY: Duration = Duration::from_millis(100);

    /// The default audit-ledger ring capacity, in records — what
    /// `--audit-dir` arms unless overridden. Streaming exports see every
    /// record regardless; the ring only bounds what a snapshot retains.
    pub const AUDIT_CAP: usize = 1 << 16;

    /// Checks that the spec can actually be built and run: positions
    /// finite, queue capacity nonzero, every flow path in bounds,
    /// loop-free and decodable hop by hop, flow ids unique and outside
    /// the reserved ACK space, and transport parameters sane. Returns
    /// the first problem found (fields in declaration order, flows in
    /// flow order), so the message always points at one concrete field.
    pub fn validate(&self) -> Result<(), SpecError> {
        let n = self.positions.len();
        if n == 0 {
            return Err(SpecError::EmptyTopology);
        }
        for (node, p) in self.positions.iter().enumerate() {
            if !(p.x.is_finite() && p.y.is_finite()) {
                return Err(SpecError::NonFinitePosition { node });
            }
        }
        if self.queue_cap == 0 {
            return Err(SpecError::ZeroQueueCap);
        }
        let mut seen_ids = std::collections::BTreeSet::new();
        for f in &self.flows {
            if f.id >= crate::transport::TRANSPORT_ACK_FLOW {
                return Err(SpecError::ReservedFlowId { id: f.id });
            }
            if !seen_ids.insert(f.id) {
                return Err(SpecError::DuplicateFlowId { id: f.id });
            }
            if f.path.len() < 2 {
                return Err(SpecError::ShortPath { flow: f.id });
            }
            let mut visited = std::collections::BTreeSet::new();
            for &node in &f.path {
                if node >= n {
                    return Err(SpecError::NodeOutOfBounds { flow: f.id, node });
                }
                if !visited.insert(node) {
                    return Err(SpecError::RepeatedNode { flow: f.id, node });
                }
            }
            for w in f.path.windows(2) {
                let dist = self.positions[w[0]].distance(&self.positions[w[1]]);
                if dist > self.channel.tx_range {
                    return Err(SpecError::UndecodableHop {
                        flow: f.id,
                        a: w[0],
                        b: w[1],
                        dist,
                    });
                }
            }
            if f.rate_bps == 0 {
                return Err(SpecError::ZeroRate { flow: f.id });
            }
            if f.payload_bytes == 0 {
                return Err(SpecError::ZeroPayload { flow: f.id });
            }
            match f.transport {
                Transport::Cbr => {}
                Transport::Windowed { window, .. } => {
                    if window == 0 {
                        return Err(SpecError::ZeroWindow { flow: f.id });
                    }
                }
                Transport::OnOff {
                    mean_on,
                    mean_off,
                    alpha,
                } => {
                    if !(alpha.is_finite() && alpha > 1.0) {
                        return Err(SpecError::BadOnOff {
                            flow: f.id,
                            why: "on-off alpha must be finite and > 1 (mean must exist)",
                        });
                    }
                    if mean_on.as_micros() == 0 || mean_off.as_micros() == 0 {
                        return Err(SpecError::BadOnOff {
                            flow: f.id,
                            why: "on-off mean periods must be nonzero",
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds the runnable network this spec describes;
    /// `make_controller` is called once per node. Equivalent to
    /// [`Network::new`].
    pub fn build(self, make_controller: &dyn Fn(usize) -> Box<dyn Controller>) -> Network {
        build(self, make_controller)
    }
}

/// Builds a [`Network`] from its spec (the body of [`Network::new`]).
pub(crate) fn build(
    spec: NetworkSpec,
    make_controller: &dyn Fn(usize) -> Box<dyn Controller>,
) -> Network {
    if let Err(e) = spec.validate() {
        panic!("invalid network spec: {e}");
    }
    let n = spec.positions.len();
    let master = SimRng::new(spec.seed);
    let channel = Channel::new(&spec.positions, spec.channel, spec.loss.clone());
    let chan_rng = master.derive(u64::MAX);

    let mut routing = StaticRouting::new();
    for f in &spec.flows {
        routing.install_path(&f.path);
    }

    let mut nodes: Vec<Node> = (0..n)
        .map(|id| {
            Node::new(
                id,
                Mac::new(id, spec.mac),
                make_controller(id),
                master.derive(id as u64),
            )
        })
        .collect();

    // Windowed flows need the reverse path for their end-to-end ACKs.
    for f in &spec.flows {
        if matches!(f.transport, Transport::Windowed { .. }) {
            let mut rev = f.path.clone();
            rev.reverse();
            routing.install_path(&rev);
        }
    }

    // Create the queues each flow needs: an own-traffic queue at the
    // source, a forward queue at every relay (per successor).
    for f in &spec.flows {
        let src = f.path[0];
        let dst = *f.path.last().expect("non-empty path");
        let first_hop = routing.next_hop(src, dst).expect("installed");
        nodes[src].queue_index(true, first_hop, spec.queue_cap);
        for &relay in &f.path[1..f.path.len() - 1] {
            let nh = routing.next_hop(relay, dst).expect("installed");
            nodes[relay].queue_index(false, nh, spec.queue_cap);
        }
        if matches!(f.transport, Transport::Windowed { .. }) {
            // Reverse-direction queues: the sink originates ACKs, the
            // relays forward them toward the source.
            let first_back = routing.next_hop(dst, src).expect("installed");
            nodes[dst].queue_index(true, first_back, spec.queue_cap);
            for &relay in f.path[1..f.path.len() - 1].iter() {
                let nh = routing.next_hop(relay, src).expect("installed");
                nodes[relay].queue_index(false, nh, spec.queue_cap);
            }
        }
    }

    // The frame store every layer will trade handles into; born here so
    // the pre-run MAC programming below can already use the real thing.
    let mut arena = ezflow_phy::FrameArena::new();

    // Program initial contention windows. With the audit armed, each
    // build-time assignment becomes the node's first ledger entry — the
    // static-penalty baseline makes all its "decisions" right here.
    let mut audit = crate::audit::AuditLedger::new(n, spec.audit_cap);
    for node in nodes.iter_mut() {
        if let Some(cw) = node.controller.initial_cw_min() {
            if audit.enabled() {
                let before = node.mac.cw_min();
                audit.record_decision(
                    Time::ZERO,
                    node.id,
                    crate::controller::DecisionRecord {
                        kind: crate::controller::DecisionKind::Assign,
                        successor: None,
                        avg: cw as f64,
                        countup: 0,
                        countdown: 0,
                        up_threshold: 0,
                        down_threshold: 0,
                        cw_before: before,
                        cw_after: cw,
                    },
                );
            }
            let outs = node.mac.input(
                Time::ZERO,
                MacInput::SetCwMin { cw_min: cw },
                &mut node.rng,
                &mut arena,
            );
            debug_assert!(outs.is_empty());
        }
    }

    let sources: Vec<CbrSource> = spec
        .flows
        .iter()
        .map(|f| CbrSource {
            flow: f.id,
            src: f.path[0],
            dst: *f.path.last().expect("non-empty"),
            rate_bps: f.rate_bps,
            payload_bytes: f.payload_bytes,
            start: f.start,
            stop: f.stop,
        })
        .collect();
    let source_intervals: Vec<_> = sources.iter().map(CbrSource::interval).collect();

    let successors: Vec<Vec<usize>> = (0..n).map(|id| routing.successors(id)).collect();
    let backlog_every = nodes
        .iter()
        .filter_map(|nd| nd.controller.backlog_period())
        .min();

    let flow_ids: Vec<u32> = spec.flows.iter().map(|f| f.id).collect();
    let metrics = Metrics::new(n, &flow_ids, spec.metric_bin);

    // Transport RNG streams live above the per-node id space (`1 << 32`
    // + flow id): `derive` is pure, so handing a stream to a stochastic
    // transport perturbs neither the per-node streams nor the channel's.
    let transports: Vec<(u32, Option<Box<dyn FlowTransport>>)> = spec
        .flows
        .iter()
        .map(|f| {
            let rng = master.derive((1u64 << 32) + f.id as u64);
            (f.id, Some(build_transport(f, rng)))
        })
        .collect();

    // Partition the node set along the carrier-sense graph and route
    // every node's scheduler traffic to its shard's queue. The lookahead
    // is DIFS + one slot: the shortest interval between sensing a
    // cross-cut transition and the earliest MAC response it can provoke
    // (propagation is zero in this model). The shard assignment affects
    // only which queue an entry waits in — the merge restores the exact
    // serial order — so the schedule calls below are byte-for-byte the
    // serial builder's, in the same order, receiving the same seqs.
    let part = crate::partition::partition_by_sensing(&channel, spec.shards.max(1));
    let lookahead = spec.mac.difs + spec.mac.slot;
    let mut hot = crate::hot::HotState::new(n);
    hot.shard_of = part.shard_of;

    let mut sched = ShardedScheduler::with_kind(spec.sched, part.shards, lookahead);
    for (i, s) in sources.iter().enumerate() {
        sched.schedule(hot.shard_of[s.src] as usize, s.start, Ev::Traffic(i));
    }
    for (f, (_, t)) in spec.flows.iter().zip(transports.iter()) {
        let t = t.as_ref().expect("transport slot filled at build time");
        if let Some(p) = t.refresh_period() {
            let src = hot.shard_of[f.path[0]] as usize;
            sched.schedule(src, f.start + p, Ev::WindowRefresh(f.id));
        }
    }
    sched.schedule(
        crate::engine::GLOBAL_SHARD,
        Time::ZERO + spec.sample_every,
        Ev::Sample,
    );
    if let Some(p) = backlog_every {
        sched.schedule(crate::engine::GLOBAL_SHARD, Time::ZERO + p, Ev::Backlog);
    }
    // The telemetry sampler is armed *last*: with its entry resident at
    // every subsequent push, the scheduler's depth high-water mark runs
    // exactly one above the telemetry-off run's, which is what the
    // snapshot compensation subtracts (see `Network::snapshot`).
    let mut telemetry = Telemetry::new(n, &flow_ids, spec.telemetry_every, spec.telemetry_cap);
    if telemetry.enabled() {
        sched.schedule(
            crate::engine::GLOBAL_SHARD,
            Time::ZERO + telemetry.every(),
            Ev::Telemetry,
        );
        telemetry.note_push();
    }

    Network {
        now: Time::ZERO,
        sched,
        channel,
        arena,
        chan_rng,
        hot,
        nodes,
        routing,
        sources,
        source_intervals,
        successors,
        transports,
        queue_cap: spec.queue_cap,
        eifs: spec.mac.eifs,
        sample_every: spec.sample_every,
        backlog_every,
        metrics,
        trace: TraceRing::new(spec.trace_cap),
        flight: crate::flight::FlightRecorder::new(spec.flight_cap),
        telemetry,
        audit,
        profile: spec.profile,
        handler_ns: [0; PROFILE_KINDS],
        worklist: VecDeque::new(),
        rx_frames: VecDeque::new(),
        next_seq: 0,
        events: 0,
        dispatched: [0; EV_KINDS],
        by_kind_cache: [("", 0); EV_KINDS],
        start_report: ezflow_phy::StartReport::default(),
        end_report: ezflow_phy::EndReport::default(),
        mac_out_pool: Vec::new(),
        wall: std::time::Duration::ZERO,
        cut_edges: part.cut_edges,
        graph_edges: part.total_edges,
    }
}
