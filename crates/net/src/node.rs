//! One mesh node: interface queues + DCF MAC + flow controller.

use ezflow_mac::Mac;
use ezflow_phy::{FrameArena, FrameId};
use ezflow_sim::SimRng;

use crate::controller::Controller;
use crate::queue::TxQueue;

/// A wireless mesh node.
pub struct Node {
    /// Node id (index into the network's node table).
    pub id: usize,
    /// The 802.11 DCF radio.
    pub mac: Mac,
    /// The flow-control program running beside the MAC.
    pub controller: Box<dyn Controller>,
    /// Transmit queues (own-traffic and per-successor forward queues).
    pub queues: Vec<TxQueue>,
    /// This node's private random stream.
    pub rng: SimRng,
    rr: usize,
}

impl Node {
    /// Builds a node with no queues yet.
    pub fn new(id: usize, mac: Mac, controller: Box<dyn Controller>, rng: SimRng) -> Self {
        Node {
            id,
            mac,
            controller,
            queues: Vec::new(),
            rng,
            rr: 0,
        }
    }

    /// Total interface-queue occupancy, packets — the paper's "buffer
    /// occupancy" (the frame currently inside the MAC is in service, not
    /// buffered, matching how ns-2 reports IFQ length).
    pub fn occupancy(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Finds or creates the queue for (`own`, `successor`).
    pub fn queue_index(&mut self, own: bool, successor: usize, cap: usize) -> usize {
        if let Some(i) = self
            .queues
            .iter()
            .position(|q| q.own == own && q.successor == successor)
        {
            return i;
        }
        self.queues.push(TxQueue::new(own, successor, cap));
        self.queues.len() - 1
    }

    /// Enqueues `frame` into the queue for (`own`, `frame.dst`); the queue
    /// must already exist (queues are created at network build time).
    /// Returns `false` on drop-tail overflow — the caller keeps ownership
    /// of the id (and must release it) on rejection.
    pub fn enqueue(&mut self, own: bool, frame: FrameId, arena: &FrameArena) -> bool {
        let f = arena.get(frame);
        let successor = f.dst;
        let src = f.src;
        let q = self
            .queues
            .iter_mut()
            .find(|q| q.own == own && q.successor == successor)
            .unwrap_or_else(|| {
                panic!(
                    "node {src} has no {} queue toward {successor}",
                    if own { "own" } else { "forward" }
                )
            });
        q.push(frame)
    }

    /// If the own-traffic queue toward `successor` exists and is at
    /// capacity, counts the tail drop against it (exactly as a failed
    /// [`TxQueue::push`] would) and returns `true` — the engine's
    /// saturated-source fast path asks this before building a frame.
    pub fn own_queue_drop(&mut self, successor: usize) -> bool {
        match self
            .queues
            .iter_mut()
            .find(|q| q.own && q.successor == successor)
        {
            Some(q) if q.len() >= q.cap() => {
                q.drops += 1;
                true
            }
            _ => false,
        }
    }

    /// Occupancy and capacity of the queue for (`own`, `successor`) —
    /// what the flight recorder's `Enqueue` record reports. `(0, 0)` if
    /// the queue does not exist.
    pub fn queue_depth(&self, own: bool, successor: usize) -> (usize, usize) {
        self.queues
            .iter()
            .find(|q| q.own == own && q.successor == successor)
            .map(|q| (q.len(), q.cap()))
            .unwrap_or((0, 0))
    }

    /// Pops the next frame to transmit, serving nonempty queues
    /// round-robin. Returns the frame handle and the index of the queue
    /// it came from.
    pub fn pop_round_robin(&mut self) -> Option<(FrameId, usize)> {
        let n = self.queues.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            if let Some(f) = self.queues[i].pop() {
                self.rr = (i + 1) % n;
                return Some((f, i));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FixedController;
    use ezflow_mac::MacConfig;
    use ezflow_phy::Frame;
    use ezflow_sim::Time;

    fn node() -> Node {
        Node::new(
            1,
            Mac::new(1, MacConfig::default()),
            Box::new(FixedController::standard()),
            SimRng::new(1),
        )
    }

    fn frame(arena: &mut FrameArena, seq: u64, dst: usize) -> FrameId {
        let mut f = Frame::data(seq, 0, 0, 9, 1000, Time::ZERO);
        f.src = 1;
        f.dst = dst;
        arena.alloc(f)
    }

    #[test]
    fn queue_index_reuses_existing() {
        let mut n = node();
        let a = n.queue_index(false, 2, 50);
        let b = n.queue_index(false, 2, 50);
        let c = n.queue_index(true, 2, 50);
        assert_eq!(a, b);
        assert_ne!(a, c, "own and forward queues are distinct");
        assert_eq!(n.queues.len(), 2);
    }

    #[test]
    fn round_robin_interleaves_queues() {
        let mut arena = FrameArena::new();
        let mut n = node();
        n.queue_index(true, 2, 50);
        n.queue_index(false, 2, 50);
        for i in 0..3 {
            let own = frame(&mut arena, i, 2);
            arena.get_mut(own).origin = 1; // own traffic
            assert!(n.enqueue(true, own, &arena));
            let fwd = frame(&mut arena, 100 + i, 2);
            assert!(n.enqueue(false, fwd, &arena));
        }
        let seqs: Vec<u64> = (0..6)
            .map(|_| arena.get(n.pop_round_robin().unwrap().0).seq)
            .collect();
        // Alternation between own (0..) and forwarded (100..).
        assert_eq!(seqs, vec![0, 100, 1, 101, 2, 102]);
        assert!(n.pop_round_robin().is_none());
    }

    #[test]
    fn occupancy_sums_queues() {
        let mut arena = FrameArena::new();
        let mut n = node();
        n.queue_index(true, 2, 50);
        n.queue_index(false, 3, 50);
        let a = frame(&mut arena, 1, 2);
        let b = frame(&mut arena, 2, 3);
        let c = frame(&mut arena, 3, 3);
        n.enqueue(true, a, &arena);
        n.enqueue(false, b, &arena);
        n.enqueue(false, c, &arena);
        assert_eq!(n.occupancy(), 3);
    }

    #[test]
    #[should_panic(expected = "has no")]
    fn enqueue_without_queue_panics() {
        let mut arena = FrameArena::new();
        let mut n = node();
        let f = frame(&mut arena, 1, 7);
        n.enqueue(false, f, &arena);
    }
}
