//! End-of-run snapshots.
//!
//! A [`RunSnapshot`] is the cross-layer observability record of one
//! simulation: per-node airtime budgets and counters from the PHY, MAC
//! counters, controller (BOE/CAA) counters, queue statistics, scheduler
//! and wall-clock performance numbers. It serialises to JSON (and back)
//! through the dependency-free `ezflow-sim` JSON kernel, so experiment
//! binaries can write machine-readable results next to their tables.
//!
//! The schema is flat and explicit — every counter appears under its own
//! key — so downstream tooling never needs this crate to read a snapshot.

use ezflow_mac::MacStats;
use ezflow_phy::{Airtime, ChannelStats};
use ezflow_sim::{JsonValue, Time};
use ezflow_stats::LogHistogram;

use crate::controller::ControllerCounters;

/// Version stamped into every snapshot's `schema` key. Bumped when a
/// structural change lands (new always-present key, renamed field);
/// purely *additive* optional sections do not bump it. Documents without
/// the key (written before the key existed) read back as version 1 —
/// [`RunSnapshot::from_json`] is lenient about it and about every
/// section added since, so archived artifacts keep parsing.
pub const SCHEMA_VERSION: u64 = 2;

fn get_u64(v: &JsonValue, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing numeric '{name}'"))
}

fn get_f64(v: &JsonValue, name: &str) -> Result<f64, String> {
    v.get(name)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing number '{name}'"))
}

fn get_str(v: &JsonValue, name: &str) -> Result<String, String> {
    v.get(name)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string '{name}'"))
}

fn get_obj<'a>(v: &'a JsonValue, name: &str) -> Result<&'a JsonValue, String> {
    v.get(name)
        .ok_or_else(|| format!("missing object '{name}'"))
}

/// One interface queue's statistics at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// True for the own-traffic queue, false for a forward queue.
    pub own: bool,
    /// The successor this queue feeds.
    pub successor: usize,
    /// Packets queued right now.
    pub occupancy: usize,
    /// Capacity, packets.
    pub cap: usize,
    /// Deepest occupancy ever reached.
    pub high_water: usize,
    /// Drop-tail rejections.
    pub drops: u64,
    /// Frames ever accepted.
    pub accepted: u64,
}

impl QueueSnapshot {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("own", self.own.into()),
            ("successor", self.successor.into()),
            ("occupancy", self.occupancy.into()),
            ("cap", self.cap.into()),
            ("high_water", self.high_water.into()),
            ("drops", self.drops.into()),
            ("accepted", self.accepted.into()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<QueueSnapshot, String> {
        Ok(QueueSnapshot {
            own: v
                .get("own")
                .and_then(JsonValue::as_bool)
                .ok_or("missing bool 'own'")?,
            successor: get_u64(v, "successor")? as usize,
            occupancy: get_u64(v, "occupancy")? as usize,
            cap: get_u64(v, "cap")? as usize,
            high_water: get_u64(v, "high_water")? as usize,
            drops: get_u64(v, "drops")?,
            accepted: get_u64(v, "accepted")?,
        })
    }
}

fn airtime_to_json(a: Airtime) -> JsonValue {
    let (tx, rx, busy, idle) = a.fractions();
    JsonValue::obj(vec![
        ("tx_us", a.tx_us.into()),
        ("rx_us", a.rx_us.into()),
        ("busy_us", a.busy_us.into()),
        ("idle_us", a.idle_us.into()),
        // Derived, for consumers that only want the shape of the budget.
        ("tx_frac", tx.into()),
        ("rx_frac", rx.into()),
        ("busy_frac", busy.into()),
        ("idle_frac", idle.into()),
    ])
}

fn airtime_from_json(v: &JsonValue) -> Result<Airtime, String> {
    Ok(Airtime {
        tx_us: get_u64(v, "tx_us")?,
        rx_us: get_u64(v, "rx_us")?,
        busy_us: get_u64(v, "busy_us")?,
        idle_us: get_u64(v, "idle_us")?,
    })
}

fn mac_to_json(m: &MacStats) -> JsonValue {
    JsonValue::obj(vec![
        ("tx_attempts", m.tx_attempts.into()),
        ("tx_success", m.tx_success.into()),
        ("retries", m.retries.into()),
        ("drops_retry", m.drops_retry.into()),
        ("acks_sent", m.acks_sent.into()),
        ("acks_suppressed", m.acks_suppressed.into()),
        ("dup_rx", m.dup_rx.into()),
        ("spurious_ack", m.spurious_ack.into()),
        ("delivered", m.delivered.into()),
        ("rts_sent", m.rts_sent.into()),
        ("cts_sent", m.cts_sent.into()),
        ("cts_timeouts", m.cts_timeouts.into()),
        ("backoff_slots", m.backoff_slots.into()),
        ("cca_busy", m.cca_busy.into()),
        ("eifs_starts", m.eifs_starts.into()),
        ("stale_epochs", m.stale_epochs.into()),
    ])
}

fn mac_from_json(v: &JsonValue) -> Result<MacStats, String> {
    Ok(MacStats {
        tx_attempts: get_u64(v, "tx_attempts")?,
        tx_success: get_u64(v, "tx_success")?,
        retries: get_u64(v, "retries")?,
        drops_retry: get_u64(v, "drops_retry")?,
        acks_sent: get_u64(v, "acks_sent")?,
        acks_suppressed: get_u64(v, "acks_suppressed")?,
        dup_rx: get_u64(v, "dup_rx")?,
        spurious_ack: get_u64(v, "spurious_ack")?,
        delivered: get_u64(v, "delivered")?,
        rts_sent: get_u64(v, "rts_sent")?,
        cts_sent: get_u64(v, "cts_sent")?,
        cts_timeouts: get_u64(v, "cts_timeouts")?,
        backoff_slots: get_u64(v, "backoff_slots")?,
        cca_busy: get_u64(v, "cca_busy")?,
        eifs_starts: get_u64(v, "eifs_starts")?,
        stale_epochs: get_u64(v, "stale_epochs")?,
    })
}

fn counters_to_json(c: &ControllerCounters) -> JsonValue {
    JsonValue::obj(vec![
        ("boe_hits", c.boe_hits.into()),
        ("boe_misses", c.boe_misses.into()),
        ("boe_ambiguous", c.boe_ambiguous.into()),
        ("caa_increases", c.caa_increases.into()),
        ("caa_decreases", c.caa_decreases.into()),
        ("caa_holds", c.caa_holds.into()),
    ])
}

fn counters_from_json(v: &JsonValue) -> Result<ControllerCounters, String> {
    Ok(ControllerCounters {
        boe_hits: get_u64(v, "boe_hits")?,
        boe_misses: get_u64(v, "boe_misses")?,
        boe_ambiguous: get_u64(v, "boe_ambiguous")?,
        caa_increases: get_u64(v, "caa_increases")?,
        caa_decreases: get_u64(v, "caa_decreases")?,
        caa_holds: get_u64(v, "caa_holds")?,
    })
}

fn channel_to_json(c: &ChannelStats) -> JsonValue {
    JsonValue::obj(vec![
        ("tx_started", c.tx_started.into()),
        ("collisions_at_dst", c.collisions_at_dst.into()),
        ("bernoulli_losses", c.bernoulli_losses.into()),
        ("clean_deliveries", c.clean_deliveries.into()),
        ("captures", c.captures.into()),
        ("hidden_losses", c.hidden_losses.into()),
    ])
}

fn channel_from_json(v: &JsonValue) -> Result<ChannelStats, String> {
    Ok(ChannelStats {
        tx_started: get_u64(v, "tx_started")?,
        collisions_at_dst: get_u64(v, "collisions_at_dst")?,
        bernoulli_losses: get_u64(v, "bernoulli_losses")?,
        clean_deliveries: get_u64(v, "clean_deliveries")?,
        captures: get_u64(v, "captures")?,
        hidden_losses: get_u64(v, "hidden_losses")?,
    })
}

/// Everything observable about one node at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSnapshot {
    /// Node id.
    pub id: usize,
    /// Controller algorithm name.
    pub controller: String,
    /// Current `CWmin`.
    pub cw_min: u32,
    /// Where this node's time went, by radio state.
    pub airtime: Airtime,
    /// MAC counters.
    pub mac: MacStats,
    /// Controller (BOE/CAA) counters; zero for algorithms without them.
    pub counters: ControllerCounters,
    /// Per-queue statistics.
    pub queues: Vec<QueueSnapshot>,
}

impl NodeSnapshot {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("id", self.id.into()),
            ("controller", JsonValue::str(&self.controller)),
            ("cw_min", self.cw_min.into()),
            ("airtime", airtime_to_json(self.airtime)),
            ("mac", mac_to_json(&self.mac)),
            ("counters", counters_to_json(&self.counters)),
            (
                "queues",
                JsonValue::Array(self.queues.iter().map(QueueSnapshot::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<NodeSnapshot, String> {
        let queues = get_obj(v, "queues")?
            .as_array()
            .ok_or("'queues' is not an array")?
            .iter()
            .map(QueueSnapshot::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NodeSnapshot {
            id: get_u64(v, "id")? as usize,
            controller: get_str(v, "controller")?,
            cw_min: get_u64(v, "cw_min")? as u32,
            airtime: airtime_from_json(get_obj(v, "airtime")?)?,
            mac: mac_from_json(get_obj(v, "mac")?)?,
            counters: counters_from_json(get_obj(v, "counters")?)?,
            queues,
        })
    }
}

/// Scheduler-side accounting: how much event machinery the run turned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedulerSnapshot {
    /// Events ever scheduled.
    pub scheduled_total: u64,
    /// Events dispatched (popped and handled).
    pub dispatched_total: u64,
    /// Events elided inside the pop loop by the scheduler's stale-timer
    /// hook — popped and counted, never dispatched. Deterministic and
    /// identical across scheduler backends (unlike the wheel gauges in
    /// [`PerfSnapshot`]), so it lives in this comparable block.
    pub stale_elided: u64,
    /// Timer entries moved in place by keyed rescheduling — the successor
    /// of the schedule-new-then-elide pattern: each re-arm consumes the
    /// old entry exactly as a pop-time elision did, without the entry
    /// ever sitting in the queue as churn. Deterministic across backends.
    pub rescheduled_total: u64,
    /// Timer entries physically removed (parked frozen countdowns
    /// awaiting a later re-arm). Deterministic across backends.
    pub removed_total: u64,
    /// Events still pending at snapshot time.
    pub pending: usize,
    /// Deepest the pending-event heap ever got.
    pub depth_high_water: usize,
    /// Dispatch counts per event kind, in the network's kind order.
    pub dispatched_by_kind: Vec<(String, u64)>,
}

impl SchedulerSnapshot {
    fn to_json(&self) -> JsonValue {
        let by_kind = self
            .dispatched_by_kind
            .iter()
            .map(|(k, n)| (k.as_str(), JsonValue::from(*n)))
            .collect();
        JsonValue::obj(vec![
            ("scheduled_total", self.scheduled_total.into()),
            ("dispatched_total", self.dispatched_total.into()),
            ("stale_elided", self.stale_elided.into()),
            ("rescheduled_total", self.rescheduled_total.into()),
            ("removed_total", self.removed_total.into()),
            ("pending", self.pending.into()),
            ("depth_high_water", self.depth_high_water.into()),
            ("dispatched_by_kind", JsonValue::obj(by_kind)),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<SchedulerSnapshot, String> {
        let by_kind_obj = get_obj(v, "dispatched_by_kind")?;
        let JsonValue::Object(pairs) = by_kind_obj else {
            return Err("'dispatched_by_kind' is not an object".into());
        };
        let dispatched_by_kind = pairs
            .iter()
            .map(|(k, n)| {
                n.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("bad count for kind '{k}'"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SchedulerSnapshot {
            scheduled_total: get_u64(v, "scheduled_total")?,
            dispatched_total: get_u64(v, "dispatched_total")?,
            stale_elided: get_u64(v, "stale_elided")?,
            rescheduled_total: get_u64(v, "rescheduled_total")?,
            removed_total: get_u64(v, "removed_total")?,
            pending: get_u64(v, "pending")? as usize,
            depth_high_water: get_u64(v, "depth_high_water")? as usize,
            dispatched_by_kind,
        })
    }
}

/// Wall-clock performance of the run, plus the heap-churn gauges that
/// explain it. The wall-clock numbers are the only non-deterministic part
/// of a snapshot — everything else is a pure function of the spec and
/// seed — so tests zero this whole block before comparing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfSnapshot {
    /// Wall-clock seconds spent inside `run_until`.
    pub wall_secs: f64,
    /// Simulated seconds covered.
    pub sim_secs: f64,
    /// Events *consumed* (dispatched plus stale-elided) per wall-clock
    /// second — the apples-to-apples throughput metric across scheduler
    /// generations, since elision turns former dispatches into pops.
    pub events_per_sec: f64,
    /// Simulated seconds per wall-clock second.
    pub sim_rate: f64,
    /// Deepest the scheduler's pending-event heap ever got — the working
    /// set the event loop keeps alive.
    pub sched_depth_high_water: u64,
    /// Timer events discarded as stale (epoch-token cancellation): queue
    /// entries the simulation paid for but never used. The scheduler's
    /// pop-time elisions plus the MAC's own defensive count.
    pub stale_epoch_drops: u64,
    /// Calendar-queue cursor advances, in buckets; zero on the heap
    /// backend. A backend implementation gauge, not comparable state.
    pub sched_rotations: u64,
    /// Entries migrated from the calendar queue's overflow heap into
    /// buckets on rotation; zero on the heap backend.
    pub sched_overflow_refills: u64,
    /// Deepest any single calendar-queue bucket ever got; zero on the
    /// heap backend.
    pub sched_bucket_high_water: u64,
    /// Trace-ring records pushed but no longer held (evicted by the
    /// bounded ring, or never stored because tracing was disabled).
    pub trace_evictions: u64,
    /// Peak live-frame population of the frame arena — the run's frame
    /// memory footprint in ~100-byte slots (the slab never shrinks).
    pub arena_high_water: u64,
    /// Self-profiler: wall-clock nanoseconds spent inside each event
    /// kind's handler, in [`crate::engine::PROFILE_NAMES`] order (the
    /// last slot is the telemetry sampler). All zero — and the JSON key
    /// omitted — unless the spec set `profile`.
    pub handler_ns: [u64; crate::engine::PROFILE_KINDS],
    /// Telemetry sample windows completed; zero (key omitted) with
    /// telemetry off.
    pub telemetry_windows: u64,
    /// Telemetry sample windows per wall-clock second.
    pub telemetry_windows_per_sec: f64,
    /// Scheduler partitions the run used. 1 (key omitted, along with the
    /// two counters below) for a serial run — the pre-sharding schema is
    /// preserved byte for byte.
    pub shards: u64,
    /// Scheduler posts whose target shard differed from the shard being
    /// executed — the PDES cross-partition traffic.
    pub cut_deliveries: u64,
    /// Lookahead-epoch advances at the merge point: how often a
    /// conservative parallel execution would have had to synchronize.
    pub barrier_waits: u64,
}

impl PerfSnapshot {
    /// An all-zero perf block.
    ///
    /// Wall-clock numbers are the one honestly non-deterministic part of a
    /// [`RunSnapshot`]; tests (and the sweep runner's byte-identity check)
    /// overwrite `snapshot.perf` with this before comparing JSON.
    pub fn zeroed() -> Self {
        PerfSnapshot {
            wall_secs: 0.0,
            sim_secs: 0.0,
            events_per_sec: 0.0,
            sim_rate: 0.0,
            sched_depth_high_water: 0,
            stale_epoch_drops: 0,
            sched_rotations: 0,
            sched_overflow_refills: 0,
            sched_bucket_high_water: 0,
            trace_evictions: 0,
            arena_high_water: 0,
            handler_ns: [0; crate::engine::PROFILE_KINDS],
            telemetry_windows: 0,
            telemetry_windows_per_sec: 0.0,
            shards: 0,
            cut_deliveries: 0,
            barrier_waits: 0,
        }
    }

    /// The JSON representation of the perf block. Public so the perf
    /// harness can splice a zeroed block into a [`Network::snapshot_json`]
    /// document when building its deterministic digest.
    ///
    /// [`Network::snapshot_json`]: crate::Network::snapshot_json
    pub fn to_json(self) -> JsonValue {
        let mut fields = vec![
            ("wall_secs", self.wall_secs.into()),
            ("sim_secs", self.sim_secs.into()),
            ("events_per_sec", self.events_per_sec.into()),
            ("sim_rate", self.sim_rate.into()),
            ("sched_depth_high_water", self.sched_depth_high_water.into()),
            ("stale_epoch_drops", self.stale_epoch_drops.into()),
            ("sched_rotations", self.sched_rotations.into()),
            ("sched_overflow_refills", self.sched_overflow_refills.into()),
            (
                "sched_bucket_high_water",
                self.sched_bucket_high_water.into(),
            ),
            ("trace_evictions", self.trace_evictions.into()),
            ("arena_high_water", self.arena_high_water.into()),
        ];
        // Profiler and telemetry keys appear only when those features ran:
        // a feature-off (or zeroed) perf block keeps the pre-telemetry
        // schema byte for byte.
        if self.handler_ns.iter().any(|&n| n != 0) {
            fields.push((
                "handler_ns_by_kind",
                JsonValue::obj(
                    crate::engine::PROFILE_NAMES
                        .iter()
                        .zip(self.handler_ns.iter())
                        .map(|(&k, &n)| (k, JsonValue::from(n)))
                        .collect(),
                ),
            ));
        }
        if self.telemetry_windows > 0 {
            fields.push(("telemetry_windows", self.telemetry_windows.into()));
            fields.push((
                "telemetry_windows_per_sec",
                self.telemetry_windows_per_sec.into(),
            ));
        }
        if self.shards > 1 {
            fields.push(("shards", self.shards.into()));
            fields.push(("cut_deliveries", self.cut_deliveries.into()));
            fields.push(("barrier_waits", self.barrier_waits.into()));
        }
        JsonValue::obj(fields)
    }

    fn from_json(v: &JsonValue) -> Result<PerfSnapshot, String> {
        let mut handler_ns = [0u64; crate::engine::PROFILE_KINDS];
        if let Some(by_kind) = v.get("handler_ns_by_kind") {
            for (slot, name) in handler_ns.iter_mut().zip(crate::engine::PROFILE_NAMES) {
                *slot = get_u64(by_kind, name)?;
            }
        }
        Ok(PerfSnapshot {
            wall_secs: get_f64(v, "wall_secs")?,
            sim_secs: get_f64(v, "sim_secs")?,
            events_per_sec: get_f64(v, "events_per_sec")?,
            sim_rate: get_f64(v, "sim_rate")?,
            sched_depth_high_water: get_u64(v, "sched_depth_high_water")?,
            stale_epoch_drops: get_u64(v, "stale_epoch_drops")?,
            sched_rotations: get_u64(v, "sched_rotations")?,
            sched_overflow_refills: get_u64(v, "sched_overflow_refills")?,
            sched_bucket_high_water: get_u64(v, "sched_bucket_high_water")?,
            trace_evictions: get_u64(v, "trace_evictions")?,
            // Absent in pre-arena snapshots; read leniently so archived
            // run artifacts still parse.
            arena_high_water: v
                .get("arena_high_water")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            handler_ns,
            telemetry_windows: v
                .get("telemetry_windows")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            telemetry_windows_per_sec: v
                .get("telemetry_windows_per_sec")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            // Absent in serial-run (and pre-sharding) documents.
            shards: v.get("shards").and_then(JsonValue::as_u64).unwrap_or(0),
            cut_deliveries: v
                .get("cut_deliveries")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            barrier_waits: v
                .get("barrier_waits")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
        })
    }
}

/// One sustained queue-oscillation episode, as detected by
/// `ezflow_stats::stability` over the telemetry queue-depth ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpisodeSnapshot {
    /// Episode start, microseconds of simulated time.
    pub start_us: u64,
    /// Episode end (exclusive), microseconds.
    pub end_us: u64,
    /// Largest analysis-window amplitude inside the episode, packets.
    pub peak_amplitude: f64,
}

impl EpisodeSnapshot {
    fn to_json(self) -> JsonValue {
        JsonValue::obj(vec![
            ("start_us", self.start_us.into()),
            ("end_us", self.end_us.into()),
            ("peak_amplitude", self.peak_amplitude.into()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<EpisodeSnapshot, String> {
        Ok(EpisodeSnapshot {
            start_us: get_u64(v, "start_us")?,
            end_us: get_u64(v, "end_us")?,
            peak_amplitude: get_f64(v, "peak_amplitude")?,
        })
    }
}

/// One node's stability verdict: oscillation scores over its telemetry
/// queue-depth ring plus the sustained episodes.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeStabilitySnapshot {
    /// Node id.
    pub node: usize,
    /// Mean per-analysis-window oscillation amplitude (max − min),
    /// packets.
    pub amplitude_mean: f64,
    /// Largest window amplitude seen.
    pub amplitude_max: f64,
    /// Mean windowed coefficient of variation (std / mean).
    pub cv_mean: f64,
    /// Sustained oscillation episodes, in time order.
    pub episodes: Vec<EpisodeSnapshot>,
}

impl NodeStabilitySnapshot {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("node", self.node.into()),
            ("amplitude_mean", self.amplitude_mean.into()),
            ("amplitude_max", self.amplitude_max.into()),
            ("cv_mean", self.cv_mean.into()),
            (
                "episodes",
                JsonValue::Array(
                    self.episodes
                        .iter()
                        .map(|e| EpisodeSnapshot::to_json(*e))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<NodeStabilitySnapshot, String> {
        let episodes = get_obj(v, "episodes")?
            .as_array()
            .ok_or("'episodes' is not an array")?
            .iter()
            .map(EpisodeSnapshot::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NodeStabilitySnapshot {
            node: get_u64(v, "node")? as usize,
            amplitude_mean: get_f64(v, "amplitude_mean")?,
            amplitude_max: get_f64(v, "amplitude_max")?,
            cv_mean: get_f64(v, "cv_mean")?,
            episodes,
        })
    }
}

/// The `stability` section of a [`RunSnapshot`]: the turbulence verdict
/// computed from the telemetry rings. Present only when the run had
/// telemetry armed (`telemetry_every` set) — absent, the snapshot JSON is
/// byte-identical to a telemetry-off run's.
#[derive(Clone, Debug, PartialEq)]
pub struct StabilitySnapshot {
    /// Telemetry sampling interval, microseconds.
    pub interval_us: u64,
    /// Completed sample windows.
    pub windows: u64,
    /// Sustained oscillation episodes across all nodes.
    pub episodes_total: u64,
    /// Largest per-node mean oscillation amplitude — the "how turbulent
    /// is the worst queue" headline number.
    pub worst_amplitude_mean: f64,
    /// Minimum windowed Jain fairness index across sample windows.
    pub fairness_min_window: f64,
    /// Mean windowed Jain fairness index.
    pub fairness_mean_window: f64,
    /// Per-node verdicts, in node-id order.
    pub nodes: Vec<NodeStabilitySnapshot>,
}

impl StabilitySnapshot {
    /// The JSON representation.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("interval_us", self.interval_us.into()),
            ("windows", self.windows.into()),
            ("episodes_total", self.episodes_total.into()),
            ("worst_amplitude_mean", self.worst_amplitude_mean.into()),
            ("fairness_min_window", self.fairness_min_window.into()),
            ("fairness_mean_window", self.fairness_mean_window.into()),
            (
                "nodes",
                JsonValue::Array(
                    self.nodes
                        .iter()
                        .map(NodeStabilitySnapshot::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstructs the section from its JSON representation.
    pub fn from_json(v: &JsonValue) -> Result<StabilitySnapshot, String> {
        let nodes = get_obj(v, "nodes")?
            .as_array()
            .ok_or("'nodes' is not an array")?
            .iter()
            .map(NodeStabilitySnapshot::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StabilitySnapshot {
            interval_us: get_u64(v, "interval_us")?,
            windows: get_u64(v, "windows")?,
            episodes_total: get_u64(v, "episodes_total")?,
            worst_amplitude_mean: get_f64(v, "worst_amplitude_mean")?,
            fairness_min_window: get_f64(v, "fairness_min_window")?,
            fairness_mean_window: get_f64(v, "fairness_mean_window")?,
            nodes,
        })
    }
}

/// One node's entry in the `controller` section: how often the audit saw
/// its window actually move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControllerNodeSnapshot {
    /// Node id.
    pub node: usize,
    /// Decisions that changed `CWmin` (holds and same-window assigns are
    /// counted in `decisions_total`, not here).
    pub cw_changes: u64,
}

impl ControllerNodeSnapshot {
    fn to_json(self) -> JsonValue {
        JsonValue::obj(vec![
            ("node", self.node.into()),
            ("cw_changes", self.cw_changes.into()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<ControllerNodeSnapshot, String> {
        Ok(ControllerNodeSnapshot {
            node: get_u64(v, "node")? as usize,
            cw_changes: get_u64(v, "cw_changes")?,
        })
    }
}

/// One (node → successor) link's BOE estimation-error summary, from the
/// audit's ground-truth probe.
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerLinkSnapshot {
    /// The estimating node.
    pub node: usize,
    /// The successor whose buffer it estimates.
    pub successor: usize,
    /// Estimate/truth pairs observed.
    pub samples: u64,
    /// Mean signed error (estimate − truth), packets.
    pub bias: f64,
    /// Mean absolute error, packets.
    pub mae: f64,
    /// Largest absolute error, packets.
    pub max_abs: f64,
    /// Sustained-divergence episodes, in time order.
    pub episodes: Vec<EpisodeSnapshot>,
}

impl ControllerLinkSnapshot {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("node", self.node.into()),
            ("successor", self.successor.into()),
            ("samples", self.samples.into()),
            ("bias", self.bias.into()),
            ("mae", self.mae.into()),
            ("max_abs", self.max_abs.into()),
            (
                "episodes",
                JsonValue::Array(
                    self.episodes
                        .iter()
                        .map(|e| EpisodeSnapshot::to_json(*e))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<ControllerLinkSnapshot, String> {
        let episodes = get_obj(v, "episodes")?
            .as_array()
            .ok_or("'episodes' is not an array")?
            .iter()
            .map(EpisodeSnapshot::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ControllerLinkSnapshot {
            node: get_u64(v, "node")? as usize,
            successor: get_u64(v, "successor")? as usize,
            samples: get_u64(v, "samples")?,
            bias: get_f64(v, "bias")?,
            mae: get_f64(v, "mae")?,
            max_abs: get_f64(v, "max_abs")?,
            episodes,
        })
    }
}

/// The `controller` section of a [`RunSnapshot`]: the audit ledger's
/// provenance summary. Present only when the run had the audit armed
/// (`audit_cap > 0`) — absent, the snapshot JSON is byte-identical to an
/// audit-off run's, exactly like the `stability` section.
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerSnapshot {
    /// Audit records ever recorded (including ring-evicted ones).
    pub records: u64,
    /// Decision records among them (holds that completed a round are not
    /// recorded; every record here carried a window verdict).
    pub decisions_total: u64,
    /// Per-node CW-change counts; nodes whose window never moved are
    /// omitted.
    pub nodes: Vec<ControllerNodeSnapshot>,
    /// Per-link estimation-error summaries, in (node, successor) order.
    pub links: Vec<ControllerLinkSnapshot>,
}

impl ControllerSnapshot {
    /// The JSON representation.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("records", self.records.into()),
            ("decisions_total", self.decisions_total.into()),
            (
                "nodes",
                JsonValue::Array(
                    self.nodes
                        .iter()
                        .map(|n| ControllerNodeSnapshot::to_json(*n))
                        .collect(),
                ),
            ),
            (
                "links",
                JsonValue::Array(
                    self.links
                        .iter()
                        .map(ControllerLinkSnapshot::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstructs the section from its JSON representation.
    pub fn from_json(v: &JsonValue) -> Result<ControllerSnapshot, String> {
        let nodes = get_obj(v, "nodes")?
            .as_array()
            .ok_or("'nodes' is not an array")?
            .iter()
            .map(ControllerNodeSnapshot::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let links = get_obj(v, "links")?
            .as_array()
            .ok_or("'links' is not an array")?
            .iter()
            .map(ControllerLinkSnapshot::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ControllerSnapshot {
            records: get_u64(v, "records")?,
            decisions_total: get_u64(v, "decisions_total")?,
            nodes,
            links,
        })
    }
}

/// One log-bucketed latency histogram as JSON: the sparse buckets (the
/// ground truth that round-trips exactly) plus derived p50/p95/p99/p999
/// microsecond quantiles for consumers that only want headline numbers.
fn hist_to_json(h: &LogHistogram) -> JsonValue {
    let [p50, p95, p99, p999] = h.percentiles();
    let buckets = h
        .buckets()
        .map(|(b, n)| JsonValue::Array(vec![b.into(), n.into()]))
        .collect();
    JsonValue::obj(vec![
        ("total", h.total().into()),
        ("buckets", JsonValue::Array(buckets)),
        ("p50_us", p50.into()),
        ("p95_us", p95.into()),
        ("p99_us", p99.into()),
        ("p999_us", p999.into()),
    ])
}

/// Parses a histogram back from its buckets; the derived quantile keys
/// are recomputed on demand, never trusted from input.
fn hist_from_json(v: &JsonValue) -> Result<LogHistogram, String> {
    let buckets = get_obj(v, "buckets")?
        .as_array()
        .ok_or("'buckets' is not an array")?;
    let mut pairs = Vec::with_capacity(buckets.len());
    for b in buckets {
        let pair = b.as_array().ok_or("histogram bucket is not a pair")?;
        if pair.len() != 2 {
            return Err("histogram bucket is not a [bucket, count] pair".into());
        }
        let idx = pair[0].as_u64().ok_or("bad bucket index")? as u32;
        let n = pair[1].as_u64().ok_or("bad bucket count")?;
        pairs.push((idx, n));
    }
    Ok(LogHistogram::from_buckets(pairs))
}

/// The latency section of a [`RunSnapshot`]: log-bucketed histograms per
/// flow (network latency: first dequeue at the source → delivery) and per
/// hop (enqueue at a node → that hop's successful transmission), all in
/// microseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Per-flow histograms, in flow-id order.
    pub per_flow: Vec<(u32, LogHistogram)>,
    /// Per-node hop histograms, indexed by node id.
    pub per_hop: Vec<LogHistogram>,
}

/// Serialises a latency section straight from borrowed histograms — the
/// same bytes [`LatencySnapshot::to_json`] produces, without first cloning
/// every bucket vector into an owned [`LatencySnapshot`]. The engine's
/// [`snapshot_json`](crate::Network::snapshot_json) fast path feeds this
/// directly from its metrics store.
pub(crate) fn latency_json<'a>(
    per_flow: impl Iterator<Item = (u32, &'a LogHistogram)>,
    per_hop: impl Iterator<Item = &'a LogHistogram>,
) -> JsonValue {
    let per_flow = per_flow
        .map(|(f, h)| {
            JsonValue::obj(vec![
                ("flow", JsonValue::from(f)),
                ("hist", hist_to_json(h)),
            ])
        })
        .collect();
    let per_hop = per_hop.map(hist_to_json).collect();
    JsonValue::obj(vec![
        ("per_flow", JsonValue::Array(per_flow)),
        ("per_hop", JsonValue::Array(per_hop)),
    ])
}

impl LatencySnapshot {
    fn to_json(&self) -> JsonValue {
        latency_json(
            self.per_flow.iter().map(|(f, h)| (*f, h)),
            self.per_hop.iter(),
        )
    }

    fn from_json(v: &JsonValue) -> Result<LatencySnapshot, String> {
        let per_flow = get_obj(v, "per_flow")?
            .as_array()
            .ok_or("'per_flow' is not an array")?
            .iter()
            .map(|e| {
                let flow = get_u64(e, "flow")? as u32;
                let hist = hist_from_json(get_obj(e, "hist")?)?;
                Ok((flow, hist))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let per_hop = get_obj(v, "per_hop")?
            .as_array()
            .ok_or("'per_hop' is not an array")?
            .iter()
            .map(hist_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LatencySnapshot { per_flow, per_hop })
    }
}

/// The cross-layer record of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSnapshot {
    /// Free-form label (scenario and algorithm, usually).
    pub label: String,
    /// Simulated instant the snapshot was taken at, microseconds.
    pub at_us: u64,
    /// Per-node state, in node-id order.
    pub nodes: Vec<NodeSnapshot>,
    /// Shared-channel counters.
    pub channel: ChannelStats,
    /// Event-machinery accounting.
    pub scheduler: SchedulerSnapshot,
    /// Wall-clock performance.
    pub perf: PerfSnapshot,
    /// Per-flow and per-hop latency histograms.
    pub latency: LatencySnapshot,
    /// Trace records ever pushed (including evicted or disabled ones).
    pub trace_records: u64,
    /// Turbulence/stability verdict from the telemetry rings. `None` —
    /// and the JSON key absent — when the run had telemetry off, keeping
    /// telemetry-off snapshots byte-identical to the pre-telemetry
    /// schema.
    pub stability: Option<StabilitySnapshot>,
    /// Controller-provenance summary from the audit ledger. `None` — and
    /// the JSON key absent — when the run had the audit off, keeping
    /// audit-off snapshots byte-identical to the pre-audit schema.
    pub controller: Option<ControllerSnapshot>,
}

impl RunSnapshot {
    /// Simulated instant the snapshot was taken at.
    pub fn at(&self) -> Time {
        Time::from_micros(self.at_us)
    }

    /// The JSON representation.
    pub fn to_json(&self) -> JsonValue {
        self.to_json_with_latency(self.latency.to_json())
    }

    /// The JSON representation with a caller-supplied latency section.
    /// Lets [`Network::snapshot_json`](crate::Network::snapshot_json)
    /// serialise the histograms from borrows and splice the result in,
    /// instead of cloning them into `self.latency` first.
    pub(crate) fn to_json_with_latency(&self, latency: JsonValue) -> JsonValue {
        let mut fields = vec![
            ("schema", SCHEMA_VERSION.into()),
            ("label", JsonValue::str(&self.label)),
            ("at_us", self.at_us.into()),
            (
                "nodes",
                JsonValue::Array(self.nodes.iter().map(NodeSnapshot::to_json).collect()),
            ),
            ("channel", channel_to_json(&self.channel)),
            ("scheduler", self.scheduler.to_json()),
            ("perf", self.perf.to_json()),
            ("latency", latency),
            ("trace_records", self.trace_records.into()),
        ];
        if let Some(st) = &self.stability {
            fields.push(("stability", st.to_json()));
        }
        if let Some(ctl) = &self.controller {
            fields.push(("controller", ctl.to_json()));
        }
        JsonValue::obj(fields)
    }

    /// Reconstructs a snapshot from its JSON representation. Lenient
    /// about everything added since schema 1: a missing `schema` key
    /// means version 1, and the optional `stability` / `controller`
    /// sections (plus `arena_high_water` and the telemetry perf keys)
    /// default rather than error, so every older committed snapshot and
    /// golden still parses.
    pub fn from_json(v: &JsonValue) -> Result<RunSnapshot, String> {
        let schema = v.get("schema").and_then(JsonValue::as_u64).unwrap_or(1);
        if schema > SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema {schema} is newer than supported {SCHEMA_VERSION}"
            ));
        }
        let nodes = get_obj(v, "nodes")?
            .as_array()
            .ok_or("'nodes' is not an array")?
            .iter()
            .map(NodeSnapshot::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunSnapshot {
            label: get_str(v, "label")?,
            at_us: get_u64(v, "at_us")?,
            nodes,
            channel: channel_from_json(get_obj(v, "channel")?)?,
            scheduler: SchedulerSnapshot::from_json(get_obj(v, "scheduler")?)?,
            perf: PerfSnapshot::from_json(get_obj(v, "perf")?)?,
            latency: LatencySnapshot::from_json(get_obj(v, "latency")?)?,
            trace_records: get_u64(v, "trace_records")?,
            stability: v
                .get("stability")
                .map(StabilitySnapshot::from_json)
                .transpose()?,
            controller: v
                .get("controller")
                .map(ControllerSnapshot::from_json)
                .transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSnapshot {
        RunSnapshot {
            label: "scenario-1/ez-flow".into(),
            at_us: 120_000_000,
            nodes: vec![NodeSnapshot {
                id: 0,
                controller: "ez-flow".into(),
                cw_min: 64,
                airtime: Airtime {
                    tx_us: 10,
                    rx_us: 20,
                    busy_us: 30,
                    idle_us: 40,
                },
                mac: MacStats {
                    tx_attempts: 5,
                    tx_success: 4,
                    retries: 1,
                    backoff_slots: 77,
                    ..MacStats::default()
                },
                counters: ControllerCounters {
                    boe_hits: 9,
                    caa_increases: 2,
                    ..ControllerCounters::default()
                },
                queues: vec![QueueSnapshot {
                    own: true,
                    successor: 1,
                    occupancy: 3,
                    cap: 50,
                    high_water: 17,
                    drops: 2,
                    accepted: 100,
                }],
            }],
            channel: ChannelStats {
                tx_started: 5,
                clean_deliveries: 4,
                collisions_at_dst: 1,
                ..ChannelStats::default()
            },
            scheduler: SchedulerSnapshot {
                scheduled_total: 1000,
                dispatched_total: 983,
                stale_elided: 7,
                rescheduled_total: 3,
                removed_total: 2,
                pending: 10,
                depth_high_water: 42,
                dispatched_by_kind: vec![("traffic".into(), 500), ("tx_end".into(), 483)],
            },
            perf: PerfSnapshot {
                wall_secs: 0.5,
                sim_secs: 120.0,
                events_per_sec: 1980.0,
                sim_rate: 240.0,
                sched_depth_high_water: 42,
                stale_epoch_drops: 7,
                sched_rotations: 11,
                sched_overflow_refills: 2,
                sched_bucket_high_water: 5,
                trace_evictions: 3,
                arena_high_water: 120,
                handler_ns: [0; crate::engine::PROFILE_KINDS],
                telemetry_windows: 0,
                telemetry_windows_per_sec: 0.0,
                shards: 0,
                cut_deliveries: 0,
                barrier_waits: 0,
            },
            latency: LatencySnapshot {
                per_flow: vec![(0, {
                    let mut h = LogHistogram::new();
                    for v in [100, 2_000, 2_000, 55_000] {
                        h.record(v);
                    }
                    h
                })],
                per_hop: vec![LogHistogram::new(), {
                    let mut h = LogHistogram::new();
                    h.record(640);
                    h
                }],
            },
            trace_records: 12345,
            stability: None,
            controller: None,
        }
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let json = snap.to_json();
        let text = json.to_pretty();
        let parsed = JsonValue::parse(&text).unwrap();
        let back = RunSnapshot::from_json(&parsed).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn optional_sections_round_trip_and_stay_out_of_plain_json() {
        // Telemetry and audit off: no "stability"/"controller" keys, no
        // profiler/telemetry perf keys — the feature-off schema byte for
        // byte.
        let plain = sample();
        let json = plain.to_json();
        let text = json.to_pretty();
        assert!(!text.contains("stability"));
        assert!(!text.contains("handler_ns_by_kind"));
        assert!(!text.contains("telemetry_windows"));
        assert!(!text.contains("cut_deliveries"));
        // Structural probe, not text: each node serialises its controller
        // *name* under "controller" too, so look at the top level only.
        assert!(json.get("controller").is_none());

        // Telemetry + profiler + audit on: everything round-trips.
        let mut snap = sample();
        snap.controller = Some(ControllerSnapshot {
            records: 500,
            decisions_total: 12,
            nodes: vec![ControllerNodeSnapshot {
                node: 1,
                cw_changes: 3,
            }],
            links: vec![ControllerLinkSnapshot {
                node: 1,
                successor: 2,
                samples: 480,
                bias: -0.25,
                mae: 0.5,
                max_abs: 6.0,
                episodes: vec![EpisodeSnapshot {
                    start_us: 2_000_000,
                    end_us: 4_000_000,
                    peak_amplitude: 6.0,
                }],
            }],
        });
        snap.perf.handler_ns[0] = 123;
        snap.perf.handler_ns[crate::engine::PROFILE_KINDS - 1] = 456;
        snap.perf.telemetry_windows = 10;
        snap.perf.telemetry_windows_per_sec = 20.0;
        snap.perf.shards = 4;
        snap.perf.cut_deliveries = 77;
        snap.perf.barrier_waits = 9;
        snap.stability = Some(StabilitySnapshot {
            interval_us: 100_000,
            windows: 10,
            episodes_total: 1,
            worst_amplitude_mean: 31.5,
            fairness_min_window: 0.5,
            fairness_mean_window: 0.9,
            nodes: vec![NodeStabilitySnapshot {
                node: 1,
                amplitude_mean: 31.5,
                amplitude_max: 44.0,
                cv_mean: 0.8,
                episodes: vec![EpisodeSnapshot {
                    start_us: 5_000_000,
                    end_us: 11_000_000,
                    peak_amplitude: 44.0,
                }],
            }],
        });
        let text = snap.to_json().to_pretty();
        assert!(text.contains("fairness_min_window"));
        let parsed = JsonValue::parse(&text).unwrap();
        let back = RunSnapshot::from_json(&parsed).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_carries_airtime_fractions() {
        let json = sample().to_json();
        let air = json.get("nodes").unwrap().as_array().unwrap()[0]
            .get("airtime")
            .unwrap()
            .clone();
        let frac = |k: &str| air.get(k).unwrap().as_f64().unwrap();
        let sum = frac("tx_frac") + frac("rx_frac") + frac("busy_frac") + frac("idle_frac");
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "fractions must sum to 1, got {sum}"
        );
        assert!((frac("tx_frac") - 0.1).abs() < 1e-9);
    }

    #[test]
    fn latency_json_carries_derived_quantiles() {
        let json = sample().to_json();
        let per_flow = json
            .get("latency")
            .unwrap()
            .get("per_flow")
            .unwrap()
            .as_array()
            .unwrap();
        let hist = per_flow[0].get("hist").unwrap();
        assert_eq!(hist.get("total").unwrap().as_u64(), Some(4));
        let q = |k: &str| hist.get(k).unwrap().as_u64().unwrap();
        assert!(q("p50_us") <= q("p95_us"));
        assert!(q("p95_us") <= q("p99_us"));
        assert!(q("p99_us") <= q("p999_us"));
        // The p50 bucket midpoint approximates the 2 ms mode.
        assert!((1_900..=2_100).contains(&q("p50_us")), "{}", q("p50_us"));
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let err = RunSnapshot::from_json(&JsonValue::obj(vec![])).unwrap_err();
        assert!(err.contains("nodes"), "{err}");
    }

    #[test]
    fn schema_version_is_stamped_and_future_versions_are_rejected() {
        let json = sample().to_json();
        assert_eq!(
            json.get("schema").and_then(JsonValue::as_u64),
            Some(SCHEMA_VERSION)
        );
        let JsonValue::Object(mut fields) = json else {
            unreachable!()
        };
        fields[0].1 = JsonValue::from(SCHEMA_VERSION + 1);
        let err = RunSnapshot::from_json(&JsonValue::Object(fields)).unwrap_err();
        assert!(err.contains("newer than supported"), "{err}");
    }

    /// The lenient-read guarantee: a document written by any older schema
    /// — no `schema` key (v1), no `stability`, no `controller`, no
    /// `arena_high_water`, no telemetry perf keys — must still parse.
    /// Older documents are synthesised by stripping exactly the keys
    /// those generations lacked from a current snapshot.
    #[test]
    fn older_schema_documents_still_parse() {
        fn strip(v: &mut JsonValue, keys: &[&str]) {
            if let JsonValue::Object(fields) = v {
                fields.retain(|(k, _)| !keys.contains(&k.as_str()));
                for (_, v) in fields.iter_mut() {
                    strip(v, keys);
                }
            }
            if let JsonValue::Array(items) = v {
                for item in items.iter_mut() {
                    strip(item, keys);
                }
            }
        }
        let mut snap = sample();
        snap.perf.telemetry_windows = 4;
        snap.perf.telemetry_windows_per_sec = 8.0;
        snap.perf.shards = 2;
        snap.perf.cut_deliveries = 31;
        snap.perf.barrier_waits = 5;
        let mut json = snap.to_json();
        strip(
            &mut json,
            &[
                "schema",
                "stability",
                "arena_high_water",
                "telemetry_windows",
                "telemetry_windows_per_sec",
                "shards",
                "cut_deliveries",
                "barrier_waits",
            ],
        );
        // "controller" collides with each node's controller-name field,
        // so the audit section is stripped at the top level only.
        if let JsonValue::Object(fields) = &mut json {
            fields.retain(|(k, _)| k != "controller");
        }
        let text = json.to_pretty();
        let back = RunSnapshot::from_json(&JsonValue::parse(&text).unwrap())
            .expect("pre-schema document must parse");
        assert_eq!(back.label, snap.label);
        assert_eq!(back.nodes, snap.nodes);
        assert_eq!(back.perf.arena_high_water, 0, "lenient default");
        assert_eq!(back.perf.telemetry_windows, 0, "lenient default");
        assert_eq!(back.perf.shards, 0, "lenient default");
        assert_eq!(back.perf.cut_deliveries, 0, "lenient default");
        assert_eq!(back.stability, None);
        assert_eq!(back.controller, None);
    }
}
