//! The transmission-pattern kernel: sequential elimination + 1-hop
//! interference, for any chain length.

use ezflow_sim::SimRng;

/// Computes the exact distribution over transmission patterns for a K-hop
/// chain (`K = cw.len()` transmitters, nodes `0..K`), given which
/// transmitters contend and their windows.
///
/// `contends[i]` says node `i` has something to send (node 0, the
/// saturated source, must always contend). Returns `(pattern, probability)`
/// pairs where `pattern[i] == true` iff the link `i -> i+1` is *successfully*
/// activated — the paper's `z` vector. Probabilities sum to 1.
///
/// The distribution is computed by exhaustive enumeration of elimination
/// orders, which is exponential in the number of *mutually non-adjacent*
/// contender groups — trivial for the chain lengths of interest (K ≤ 16).
pub fn pattern_distribution(contends: &[bool], cw: &[u32]) -> Vec<(Vec<bool>, f64)> {
    assert_eq!(contends.len(), cw.len());
    assert!(!contends.is_empty());
    assert!(contends[0], "the saturated source always contends");
    assert!(cw.iter().all(|&c| c >= 1));

    let k = contends.len();
    let mut acc: Vec<(Vec<bool>, f64)> = Vec::new();
    let remaining: Vec<usize> = (0..k).filter(|&i| contends[i]).collect();
    let mut transmitters = Vec::new();
    enumerate(&remaining, cw, &mut transmitters, 1.0, &mut acc, k);

    // Merge identical patterns.
    acc.sort_by(|a, b| a.0.cmp(&b.0));
    let mut merged: Vec<(Vec<bool>, f64)> = Vec::new();
    for (pat, p) in acc {
        match merged.last_mut() {
            Some((last, lp)) if *last == pat => *lp += p,
            _ => merged.push((pat, p)),
        }
    }
    merged
}

fn enumerate(
    remaining: &[usize],
    cw: &[u32],
    transmitters: &mut Vec<usize>,
    prob: f64,
    acc: &mut Vec<(Vec<bool>, f64)>,
    k: usize,
) {
    if remaining.is_empty() {
        acc.push((success_pattern(transmitters, k), prob));
        return;
    }
    let total: f64 = remaining.iter().map(|&i| 1.0 / cw[i] as f64).sum();
    for &i in remaining {
        let p_pick = (1.0 / cw[i] as f64) / total;
        let next: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&j| j != i && j + 1 != i && j != i + 1)
            .collect();
        transmitters.push(i);
        enumerate(&next, cw, transmitters, prob * p_pick, acc, k);
        transmitters.pop();
    }
}

/// Applies the success rule: `z_i = 1` iff `i` transmits and `i+2` does
/// not (the interferer one hop from the receiver `i+1`).
fn success_pattern(transmitters: &[usize], k: usize) -> Vec<bool> {
    let mut tx = vec![false; k + 2];
    for &i in transmitters {
        tx[i] = true;
    }
    (0..k).map(|i| tx[i] && !tx[i + 2]).collect()
}

/// Samples one transmission pattern (same process, Monte-Carlo form) —
/// what [`crate::model::SlottedModel`] uses per slot.
pub fn sample_pattern(contends: &[bool], cw: &[u32], rng: &mut SimRng) -> Vec<bool> {
    let k = contends.len();
    let mut remaining: Vec<usize> = (0..k).filter(|&i| contends[i]).collect();
    let mut transmitters = Vec::new();
    while !remaining.is_empty() {
        let weights: Vec<f64> = remaining.iter().map(|&i| 1.0 / cw[i] as f64).collect();
        let pick = rng.pick_weighted(&weights).expect("nonempty weights");
        let i = remaining[pick];
        transmitters.push(i);
        remaining.retain(|&j| j != i && j + 1 != i && j != i + 1);
    }
    success_pattern(&transmitters, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_prob(dist: &[(Vec<bool>, f64)], pattern: &[bool]) -> f64 {
        dist.iter()
            .find(|(p, _)| p == pattern)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }

    #[test]
    fn probabilities_sum_to_one() {
        let dist = pattern_distribution(&[true, true, true, true], &[32, 16, 64, 128]);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lone_source_always_succeeds() {
        // Region A of Fig. 12: only the source has packets.
        let dist = pattern_distribution(&[true, false, false, false], &[32, 32, 32, 32]);
        assert_eq!(dist.len(), 1);
        assert_eq!(dist[0].0, vec![true, false, false, false]);
        assert!((dist[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjacent_contenders_coordinate_by_inverse_cw() {
        // Region B: contenders {0, 1}. P(z = [1,0,0,0]) = cw1/(cw0+cw1).
        let (c0, c1) = (32.0f64, 128.0f64);
        let dist = pattern_distribution(&[true, true, false, false], &[32, 128, 32, 32]);
        let p0 = dist_prob(&dist, &[true, false, false, false]);
        let p1 = dist_prob(&dist, &[false, true, false, false]);
        assert!((p0 - c1 / (c0 + c1)).abs() < 1e-12);
        assert!((p1 - c0 / (c0 + c1)).abs() < 1e-12);
    }

    #[test]
    fn two_hop_contenders_are_concurrent_and_node2_wins() {
        // Region C: contenders {0, 2} cannot sense each other; both
        // transmit; 2 destroys 0's reception at node 1 and succeeds
        // itself: z = [0,0,1,0] with probability 1 regardless of windows.
        for cw in [[16, 16, 16, 16], [1024, 16, 16, 16], [16, 16, 4096, 16]] {
            let dist = pattern_distribution(&[true, false, true, false], &cw);
            assert_eq!(dist.len(), 1, "cw = {cw:?}");
            assert_eq!(dist[0].0, vec![false, false, true, false]);
        }
    }

    #[test]
    fn hidden_pair_succeeds_together() {
        // Region D: contenders {0, 3}: z = [1,0,0,1] with probability 1.
        let dist = pattern_distribution(&[true, false, false, true], &[32, 32, 32, 99]);
        assert_eq!(dist.len(), 1);
        assert_eq!(dist[0].0, vec![true, false, false, true]);
    }

    #[test]
    fn sample_matches_distribution() {
        let contends = [true, true, false, true];
        let cw = [32u32, 64, 32, 16];
        let dist = pattern_distribution(&contends, &cw);
        let mut rng = ezflow_sim::SimRng::new(5);
        let n = 200_000;
        let mut counts: std::collections::HashMap<Vec<bool>, u64> =
            std::collections::HashMap::new();
        for _ in 0..n {
            *counts
                .entry(sample_pattern(&contends, &cw, &mut rng))
                .or_insert(0) += 1;
        }
        for (pat, p) in &dist {
            let emp = *counts.get(pat).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (emp - p).abs() < 0.005,
                "pattern {pat:?}: empirical {emp}, exact {p}"
            );
        }
    }

    #[test]
    fn longer_chains_work() {
        // K = 8: sanity — valid distribution; at most every other node
        // transmits (adjacent silencing).
        let contends = vec![true; 8];
        let cw = vec![32u32; 8];
        let dist = pattern_distribution(&contends, &cw);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(dist.len() > 1);
    }

    #[test]
    #[should_panic(expected = "source always contends")]
    fn source_must_contend() {
        pattern_distribution(&[false, true], &[32, 32]);
    }
}
