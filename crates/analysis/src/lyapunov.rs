//! Empirical Lyapunov analysis — the experimental counterpart of
//! Theorem 1 (§6.3).
//!
//! The theorem proves that with EZ-flow dynamics the drift of
//! `h(b) = b_1 + b_2 + b_3` is at most `−ε` (over a region-dependent
//! horizon `k(b)`) everywhere outside a finite set
//! `S = {b : max b_i < B}`, which by Foster's criterion makes the chain
//! ergodic. We estimate exactly those quantities from trajectories:
//!
//! * [`drift_by_region`] — conditional one-step drift of `h` per region,
//!   outside `S`;
//! * [`walk_stats`] — boundedness statistics (max/mean `h`, region
//!   occupancy, end-to-end throughput in packets/slot).

use ezflow_sim::SimRng;

use crate::kernel::pattern_distribution;
use crate::model::{ModelConfig, SlottedModel};
use crate::regions::{region_of, Region, ALL_REGIONS};

/// Exact one-step expected drifts of `h = b1+b2+b3` and of `b1` for a
/// 4-hop region under windows `cw`, computed from the closed pattern
/// distribution (no sampling): `E[dh] = P(z0) − P(z3)`,
/// `E[db1] = P(z0) − P(z1)`.
pub fn exact_drift(region: Region, cw: &[u32; 4]) -> (f64, f64) {
    let dist = pattern_distribution(&region.contenders(), cw);
    let mut p = [0.0f64; 4];
    for (z, prob) in &dist {
        for i in 0..4 {
            if z[i] {
                p[i] += prob;
            }
        }
    }
    (p[0] - p[3], p[0] - p[1])
}

/// Drift estimate for one region.
#[derive(Clone, Copy, Debug)]
pub struct DriftReport {
    /// Region label (Table-4 order index; see [`Region`]).
    pub region: usize,
    /// Slots observed in this region (outside `S`).
    pub visits: u64,
    /// Mean one-step drift `E[h(n+1) − h(n) | region]`.
    pub mean_drift: f64,
    /// Mean one-step drift of the first relay buffer,
    /// `E[b1(n+1) − b1(n) | region]` — the quantity that diverges under
    /// fixed windows (the paper's "buffer build-up at the first relay").
    pub mean_drift_b1: f64,
}

/// Trajectory statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalkStats {
    /// Slots simulated.
    pub slots: u64,
    /// Largest `h` seen.
    pub max_h: u64,
    /// Final `h`.
    pub final_h: u64,
    /// Time-average of `h`.
    pub mean_h: f64,
    /// Fraction of slots spent with every buffer below `boundary`.
    pub frac_in_s: f64,
    /// End-to-end deliveries per slot.
    pub throughput: f64,
    /// Largest single relay buffer seen.
    pub max_b: u64,
}

/// Runs the walk for `slots` and reports boundedness statistics, with
/// `S = {b : max b_i < boundary}`.
pub fn walk_stats(cfg: ModelConfig, slots: u64, boundary: u64, seed: u64) -> WalkStats {
    let mut m = SlottedModel::new(cfg);
    let mut rng = SimRng::new(seed);
    let mut stats = WalkStats::default();
    let mut sum_h = 0.0;
    let mut in_s = 0u64;
    for _ in 0..slots {
        m.step(&mut rng);
        let h = m.h();
        stats.max_h = stats.max_h.max(h);
        sum_h += h as f64;
        let max_b = m.buffers().iter().copied().max().unwrap_or(0);
        stats.max_b = stats.max_b.max(max_b);
        if max_b < boundary {
            in_s += 1;
        }
    }
    stats.slots = slots;
    stats.final_h = m.h();
    stats.mean_h = sum_h / slots as f64;
    stats.frac_in_s = in_s as f64 / slots as f64;
    stats.throughput = m.delivered as f64 / slots as f64;
    stats
}

/// Estimates the conditional one-step drift of `h` per region along an
/// EZ-flow (or fixed-window) trajectory of a 4-hop chain, counting only
/// slots whose state lies **outside** `S = {max b_i < boundary}`.
///
/// To guarantee every region is visited even under the stable dynamics,
/// the walk is restarted from a random out-of-`S` state in each region
/// every `restart_every` slots (drift is a property of the transition
/// kernel, not of the visiting distribution, so restarts do not bias it —
/// but note the windows keep their adapted values across restarts, so the
/// reported drift is "drift under the windows EZ-flow converges to").
pub fn drift_by_region(
    cfg: ModelConfig,
    slots_per_region: u64,
    boundary: u64,
    seed: u64,
) -> Vec<DriftReport> {
    assert_eq!(cfg.hops, 4, "region decomposition is for the 4-hop chain");
    let mut rng = SimRng::new(seed);
    let mut reports: Vec<DriftReport> = ALL_REGIONS
        .iter()
        .map(|r| DriftReport {
            region: r.index(),
            visits: 0,
            mean_drift: 0.0,
            mean_drift_b1: 0.0,
        })
        .collect();
    let mut sums = [0.0f64; 8];
    let mut sums_b1 = [0.0f64; 8];

    for region in ALL_REGIONS {
        if region == Region::A {
            continue; // A ⊆ S by construction
        }
        let mut m = SlottedModel::new(cfg);
        // Let the windows adapt from a congested start first.
        m.set_buffer(1, boundary + 5);
        for _ in 0..2_000 {
            m.step(&mut rng);
        }
        let mask = region.contenders();
        for _ in 0..slots_per_region {
            // Re-seed the buffers into the target region, outside S.
            for (i, &contending) in mask.iter().enumerate().take(4).skip(1) {
                let v = if contending {
                    boundary + rng.gen_range(10) as u64 + 1
                } else {
                    0
                };
                m.set_buffer(i, v);
            }
            let h0 = m.h();
            let b1_0 = m.buffer(1);
            let r = region_of(m.buffer(1), m.buffer(2), m.buffer(3));
            debug_assert_eq!(r, region);
            m.step(&mut rng);
            let h1 = m.h();
            let idx = region.index();
            sums[idx] += h1 as f64 - h0 as f64;
            sums_b1[idx] += m.buffer(1) as f64 - b1_0 as f64;
            reports[idx].visits += 1;
        }
    }
    for (i, rep) in reports.iter_mut().enumerate() {
        if rep.visits > 0 {
            rep.mean_drift = sums[i] / rep.visits as f64;
            rep.mean_drift_b1 = sums_b1[i] / rep.visits as f64;
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_drift_matches_closed_forms_for_equal_windows() {
        // Hand-computed from Table 4 with all windows equal (see the
        // fixed_windows_pump test below for the Monte-Carlo counterpart):
        let cw = [32u32; 4];
        let d = |r: Region| exact_drift(r, &cw);
        assert_eq!(d(Region::A), (1.0, 1.0));
        assert!((d(Region::B).0 - 0.5).abs() < 1e-12);
        assert!((d(Region::B).1 - 0.0).abs() < 1e-12);
        assert_eq!(d(Region::C), (0.0, 0.0));
        assert_eq!(d(Region::D), (0.0, 1.0));
        assert!((d(Region::E).1 + 1.0 / 3.0).abs() < 1e-12);
        assert!((d(Region::F).0 + 0.5).abs() < 1e-12);
        assert!((d(Region::F).1 - 0.5).abs() < 1e-12);
        assert!((d(Region::G).1 - 0.5).abs() < 1e-12);
        assert!((d(Region::H).0 + 0.375).abs() < 1e-12);
        assert!((d(Region::H).1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exact_drift_matches_monte_carlo() {
        // The sampled drift estimator converges to the exact values
        // (fixed windows: the sampled chain uses whatever windows it has,
        // so pin them by disabling adaptation).
        let cfg = ModelConfig {
            adaptive: false,
            ..ModelConfig::default()
        };
        let reports = drift_by_region(cfg, 30_000, 25, 11);
        let cw = [32u32; 4];
        for rep in &reports {
            if rep.visits == 0 {
                continue;
            }
            let region = ALL_REGIONS[rep.region];
            let (dh, db1) = exact_drift(region, &cw);
            assert!(
                (rep.mean_drift - dh).abs() < 0.02,
                "{region:?}: MC dh {} vs exact {dh}",
                rep.mean_drift
            );
            assert!(
                (rep.mean_drift_b1 - db1).abs() < 0.02,
                "{region:?}: MC db1 {} vs exact {db1}",
                rep.mean_drift_b1
            );
        }
    }

    #[test]
    fn throttled_source_flips_the_pumps_exactly() {
        // With the windows EZ-flow converges to (source huge, relays at
        // mincw), the exact drifts show the b1 pump of region F gone and
        // region B draining at unit rate.
        let cw = [32_768u32, 16, 16, 16];
        let (_, db1_f) = exact_drift(Region::F, &cw);
        assert!(db1_f < 0.01, "F pump must vanish, got {db1_f}");
        let (_, db1_b) = exact_drift(Region::B, &cw);
        assert!(db1_b < -0.99, "B must drain b1, got {db1_b}");
        let (dh_h, _) = exact_drift(Region::H, &cw);
        assert!(dh_h < -0.49, "H drains h, got {dh_h}");
    }

    #[test]
    fn ezflow_walk_is_bounded_and_mostly_in_s() {
        let stats = walk_stats(ModelConfig::default(), 300_000, 30, 1);
        assert!(stats.max_b < 500, "max_b = {}", stats.max_b);
        assert!(stats.frac_in_s > 0.8, "frac_in_s = {}", stats.frac_in_s);
        assert!(stats.throughput > 0.1, "throughput = {}", stats.throughput);
    }

    #[test]
    fn fixed_walk_diverges() {
        let cfg = ModelConfig {
            adaptive: false,
            ..ModelConfig::default()
        };
        let stats = walk_stats(cfg, 300_000, 30, 1);
        // The divergence is linear but slow (~0.015 packets/slot flow
        // into b1); after 300k slots h is far outside anything a stable
        // walk produces.
        assert!(
            stats.final_h > 1_000,
            "fixed-cw walk should diverge, final_h = {}",
            stats.final_h
        );
        assert!(stats.frac_in_s < 0.3, "frac_in_s = {}", stats.frac_in_s);
    }

    #[test]
    fn ezflow_drift_is_negative_outside_s() {
        // The empirical counterpart of conditions (5)-(6): under the
        // adapted windows, every out-of-S region drifts downward.
        let reports = drift_by_region(ModelConfig::default(), 20_000, 25, 3);
        for rep in &reports {
            if rep.visits == 0 {
                continue; // region A
            }
            assert!(
                rep.mean_drift < 0.05,
                "region index {} drift {} should be ~negative",
                rep.region,
                rep.mean_drift
            );
        }
        // And strictly negative on average.
        let (mut total, mut visits) = (0.0, 0u64);
        for rep in &reports {
            total += rep.mean_drift * rep.visits as f64;
            visits += rep.visits;
        }
        assert!(total / (visits as f64) < -0.05);
    }

    #[test]
    fn fixed_windows_pump_the_first_relay() {
        // With equal fixed windows, Table 4 gives closed-form one-step
        // drifts of b1: +1 in region D ([1,0,0,1] surely), +1/2 in F,
        // +1/4 in H (the source succeeds w.p. 1/4 while node 1 never
        // does). This is the analytic root of Fig. 1's buffer build-up.
        let cfg = ModelConfig {
            adaptive: false,
            ..ModelConfig::default()
        };
        let reports = drift_by_region(cfg, 20_000, 25, 3);
        let d = |r: Region| reports[r.index()].mean_drift_b1;
        assert!((d(Region::D) - 1.0).abs() < 0.02, "D: {}", d(Region::D));
        assert!((d(Region::F) - 0.5).abs() < 0.05, "F: {}", d(Region::F));
        assert!((d(Region::H) - 0.25).abs() < 0.05, "H: {}", d(Region::H));
        // And h itself climbs in region B (the source wins half the time).
        let b = &reports[Region::B.index()];
        assert!(b.mean_drift > 0.4, "B: {}", b.mean_drift);
    }

    #[test]
    fn ezflow_windows_neutralize_the_pump() {
        // Under the windows EZ-flow converges to (source throttled hard),
        // the b1 pump of regions F and H is switched off and region B
        // drains b1 at unit rate.
        let reports = drift_by_region(ModelConfig::default(), 20_000, 25, 5);
        let d = |r: Region| reports[r.index()].mean_drift_b1;
        assert!(d(Region::F).abs() < 0.1, "F: {}", d(Region::F));
        assert!(d(Region::B) < -0.9, "B: {}", d(Region::B));
    }

    #[test]
    fn longer_chains_also_stabilize() {
        // The paper: "the result can also be extended for a general K-hop
        // network, K >= 4". EZ-flow keeps every chain tightly bounded.
        for hops in [5, 6, 8] {
            let cfg = ModelConfig {
                hops,
                ..ModelConfig::default()
            };
            let stats = walk_stats(cfg, 200_000, 30, 9);
            assert!(
                stats.max_b < 200,
                "{hops}-hop EZ-flow walk should stay bounded, max_b = {}",
                stats.max_b
            );
            assert!(stats.frac_in_s > 0.95);
        }
        // Fixed windows diverge for the longer chains too (the 5-hop
        // walk is marginal at some seeds, so we assert 6 and 8).
        for hops in [6, 8] {
            let fixed = ModelConfig {
                hops,
                adaptive: false,
                ..ModelConfig::default()
            };
            let fstats = walk_stats(fixed, 200_000, 30, 9);
            assert!(
                fstats.final_h > 500,
                "{hops}-hop fixed walk should diverge, final_h = {}",
                fstats.final_h
            );
        }
    }
}
