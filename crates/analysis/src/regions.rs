//! The region decomposition (Fig. 12) and the closed-form pattern
//! probabilities of Table 4, for the 4-hop chain.

/// One of the 8 regions of the positive orthant of `Z^3`, keyed by which
/// relay buffers are nonempty (Fig. 12).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Region {
    /// `b1 = b2 = b3 = 0`
    A,
    /// `b1 > 0` only
    B,
    /// `b2 > 0` only
    C,
    /// `b3 > 0` only
    D,
    /// `b1, b2 > 0`
    E,
    /// `b1, b3 > 0`
    F,
    /// `b2, b3 > 0`
    G,
    /// all nonempty
    H,
}

/// All regions, in Table-4 order.
pub const ALL_REGIONS: [Region; 8] = [
    Region::A,
    Region::B,
    Region::C,
    Region::D,
    Region::E,
    Region::F,
    Region::G,
    Region::H,
];

/// Region of a relay-buffer vector `(b1, b2, b3)`.
pub fn region_of(b1: u64, b2: u64, b3: u64) -> Region {
    match (b1 > 0, b2 > 0, b3 > 0) {
        (false, false, false) => Region::A,
        (true, false, false) => Region::B,
        (false, true, false) => Region::C,
        (false, false, true) => Region::D,
        (true, true, false) => Region::E,
        (true, false, true) => Region::F,
        (false, true, true) => Region::G,
        (true, true, true) => Region::H,
    }
}

impl Region {
    /// Which transmitters contend in this region (node 0 always does).
    pub fn contenders(self) -> [bool; 4] {
        match self {
            Region::A => [true, false, false, false],
            Region::B => [true, true, false, false],
            Region::C => [true, false, true, false],
            Region::D => [true, false, false, true],
            Region::E => [true, true, true, false],
            Region::F => [true, true, false, true],
            Region::G => [true, false, true, true],
            Region::H => [true, true, true, true],
        }
    }

    /// Index 0..8 for array bookkeeping.
    pub fn index(self) -> usize {
        ALL_REGIONS.iter().position(|&r| r == self).expect("listed")
    }
}

/// `Σ_{i∈S} Π_{j∈S, j≠i} cw_j` — the normalizer of Table 4.
fn sigma(set: &[usize], cw: &[u32]) -> f64 {
    set.iter()
        .map(|&i| {
            set.iter()
                .filter(|&&j| j != i)
                .map(|&j| cw[j] as f64)
                .product::<f64>()
        })
        .sum()
}

/// The closed-form transmission-pattern distribution of **Table 4** for a
/// 4-hop chain: `(z, P(z))` pairs for the given region and windows.
pub fn table4_distribution(region: Region, cw: &[u32; 4]) -> Vec<(Vec<bool>, f64)> {
    let c = |i: usize| cw[i] as f64;
    let z = |a: usize, b: usize, cc: usize, d: usize| vec![a == 1, b == 1, cc == 1, d == 1];
    match region {
        Region::A => vec![(z(1, 0, 0, 0), 1.0)],
        Region::B => {
            let denom = c(0) + c(1);
            vec![(z(1, 0, 0, 0), c(1) / denom), (z(0, 1, 0, 0), c(0) / denom)]
        }
        Region::C => vec![(z(0, 0, 1, 0), 1.0)],
        Region::D => vec![(z(1, 0, 0, 1), 1.0)],
        Region::E => {
            let s = sigma(&[0, 1, 2], cw);
            let p_mid = c(0) * c(2) / s;
            vec![(z(0, 1, 0, 0), p_mid), (z(0, 0, 1, 0), 1.0 - p_mid)]
        }
        Region::F => {
            let s = sigma(&[0, 1, 3], cw);
            let p3 = c(0) * c(3) / s + (c(0) * c(1) / s) * (c(0) / (c(0) + c(1)));
            let p03 = c(1) * c(3) / s + (c(0) * c(1) / s) * (c(1) / (c(0) + c(1)));
            vec![(z(0, 0, 0, 1), p3), (z(1, 0, 0, 1), p03)]
        }
        Region::G => {
            let s = sigma(&[0, 2, 3], cw);
            let p2 = c(0) * c(3) / s + (c(2) * c(3) / s) * (c(3) / (c(2) + c(3)));
            let p03 = c(0) * c(2) / s + (c(2) * c(3) / s) * (c(2) / (c(2) + c(3)));
            vec![(z(0, 0, 1, 0), p2), (z(1, 0, 0, 1), p03)]
        }
        Region::H => {
            let s = sigma(&[0, 1, 2, 3], cw);
            let p2 = c(0) * c(1) * c(3) / s + (c(1) * c(2) * c(3) / s) * (c(3) / (c(2) + c(3)));
            let p3 = c(0) * c(2) * c(3) / s + (c(0) * c(1) * c(2) / s) * (c(0) / (c(0) + c(1)));
            let p03 = (c(1) * c(2) * c(3) / s) * (c(2) / (c(2) + c(3)))
                + (c(0) * c(1) * c(2) / s) * (c(1) / (c(0) + c(1)));
            vec![
                (z(0, 0, 1, 0), p2),
                (z(0, 0, 0, 1), p3),
                (z(1, 0, 0, 1), p03),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::pattern_distribution;
    use ezflow_sim::SimRng;

    #[test]
    fn region_mapping_is_total_and_consistent() {
        assert_eq!(region_of(0, 0, 0), Region::A);
        assert_eq!(region_of(3, 0, 0), Region::B);
        assert_eq!(region_of(0, 1, 0), Region::C);
        assert_eq!(region_of(0, 0, 9), Region::D);
        assert_eq!(region_of(1, 1, 0), Region::E);
        assert_eq!(region_of(1, 0, 1), Region::F);
        assert_eq!(region_of(0, 1, 1), Region::G);
        assert_eq!(region_of(5, 5, 5), Region::H);
        for (i, r) in ALL_REGIONS.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn table4_probabilities_sum_to_one() {
        let cw = [32u32, 64, 128, 16];
        for r in ALL_REGIONS {
            let total: f64 = table4_distribution(r, &cw).iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-12, "region {r:?}: {total}");
        }
    }

    /// The central validation: our elimination kernel reproduces Table 4
    /// **exactly**, for every region, across random window assignments.
    #[test]
    fn kernel_reproduces_table4_exactly() {
        let mut rng = SimRng::new(99);
        for trial in 0..200 {
            let cw: [u32; 4] = [
                1 << (4 + rng.gen_range(12)),
                1 << (4 + rng.gen_range(12)),
                1 << (4 + rng.gen_range(12)),
                1 << (4 + rng.gen_range(12)),
            ];
            for r in ALL_REGIONS {
                let exact = pattern_distribution(&r.contenders(), &cw);
                let table = table4_distribution(r, &cw);
                for (pat, p_table) in &table {
                    let p_kernel = exact
                        .iter()
                        .find(|(q, _)| q == pat)
                        .map(|(_, p)| *p)
                        .unwrap_or(0.0);
                    assert!(
                        (p_kernel - p_table).abs() < 1e-9,
                        "trial {trial} region {r:?} cw {cw:?} pattern {pat:?}: \
                         kernel {p_kernel} vs table {p_table}"
                    );
                }
                // And nothing outside Table 4's support.
                let support: f64 = table.iter().map(|(_, p)| p).sum();
                assert!((support - 1.0).abs() < 1e-9);
            }
        }
    }
}
