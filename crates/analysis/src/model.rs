//! The slotted random walk (Eqs. 2–4).

use ezflow_sim::SimRng;

use crate::kernel::sample_pattern;

/// Parameters of the slotted model.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Number of hops `K` (so `K` transmitters `0..K` and `K-1` relay
    /// buffers `b_1..b_{K-1}`).
    pub hops: usize,
    /// `b_max` of Eq. 2 (paper: 20).
    pub b_max: f64,
    /// `b_min` of Eq. 2 (paper: 0.05 — i.e. "the buffer is empty").
    pub b_min: f64,
    /// `mincw` (2^4).
    pub min_cw: u32,
    /// `maxcw` (2^15).
    pub max_cw: u32,
    /// True = EZ-flow dynamics (Eq. 2); false = fixed windows (802.11).
    pub adaptive: bool,
    /// Initial window at every node.
    pub initial_cw: u32,
    /// `Some(n)` makes the window map act on an `n`-sample running
    /// average of the successor buffer instead of its instantaneous value
    /// — the implementation's 50-sample CAA, transplanted into the model.
    /// `None` is the paper's Eq. 2 (per-slot, instantaneous).
    pub averaging: Option<usize>,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            hops: 4,
            b_max: 20.0,
            b_min: 0.05,
            min_cw: 16,
            max_cw: 32768,
            adaptive: true,
            initial_cw: 32,
            averaging: None,
        }
    }
}

/// The state of the random walk: relay buffers + contention windows.
#[derive(Clone, Debug)]
pub struct SlottedModel {
    cfg: ModelConfig,
    /// `b[i]` = buffer of node `i`; `b[0]` is unused (source = ∞),
    /// indices `1..hops` are the relays.
    b: Vec<u64>,
    /// Window of each transmitter `0..hops`.
    cw: Vec<u32>,
    /// Per-node running sums/counts when `averaging` is enabled.
    avg_state: Vec<(f64, usize)>,
    /// Slots simulated.
    pub slots: u64,
    /// End-to-end deliveries (successful activations of the last link).
    pub delivered: u64,
}

impl SlottedModel {
    /// Fresh model: empty buffers, uniform initial windows.
    pub fn new(cfg: ModelConfig) -> Self {
        assert!(cfg.hops >= 2);
        assert!(cfg.initial_cw.is_power_of_two());
        SlottedModel {
            cfg,
            b: vec![0; cfg.hops],
            cw: vec![cfg.initial_cw; cfg.hops],
            avg_state: vec![(0.0, 0); cfg.hops],
            slots: 0,
            delivered: 0,
        }
    }

    /// Model parameters.
    pub fn config(&self) -> ModelConfig {
        self.cfg
    }

    /// Relay buffers `b_1..b_{K-1}`.
    pub fn buffers(&self) -> &[u64] {
        &self.b[1..]
    }

    /// Buffer of node `i` (`1 <= i < hops`).
    pub fn buffer(&self, i: usize) -> u64 {
        self.b[i]
    }

    /// Contention windows of transmitters `0..hops`.
    pub fn windows(&self) -> &[u32] {
        &self.cw
    }

    /// The Lyapunov function `h(b) = Σ b_i` of Theorem 1.
    pub fn h(&self) -> u64 {
        self.b[1..].iter().sum()
    }

    /// Sets a relay buffer (for drift probing from chosen states).
    pub fn set_buffer(&mut self, i: usize, v: u64) {
        assert!((1..self.cfg.hops).contains(&i));
        self.b[i] = v;
    }

    /// Sets a transmitter window.
    pub fn set_window(&mut self, i: usize, cw: u32) {
        assert!(cw.is_power_of_two());
        self.cw[i] = cw.clamp(self.cfg.min_cw, self.cfg.max_cw);
    }

    /// Advances one slot: draws a transmission pattern, moves the buffers
    /// (Eq. 3), then — if adaptive — applies the window map `f` (Eq. 2)
    /// using the *pre-update* buffer values, exactly as the recursion in
    /// §6.2 is written. Returns the pattern.
    pub fn step(&mut self, rng: &mut SimRng) -> Vec<bool> {
        let k = self.cfg.hops;
        let contends: Vec<bool> = (0..k).map(|i| i == 0 || self.b[i] > 0).collect();
        let z = sample_pattern(&contends, &self.cw, rng);

        // Eq. 2 on the pre-update state: f(cw_i(n), b_{i+1}(n)) — or, with
        // `averaging`, on the completed n-sample mean (the CAA variant).
        let mut new_cw = self.cw.clone();
        if self.cfg.adaptive {
            #[allow(clippy::needless_range_loop)] // i spans two state arrays
            for i in 0..k {
                let b_next = if i + 1 < k { self.b[i + 1] as f64 } else { 0.0 };
                match self.cfg.averaging {
                    None => new_cw[i] = self.f(self.cw[i], b_next),
                    Some(n) => {
                        let (sum, count) = &mut self.avg_state[i];
                        *sum += b_next;
                        *count += 1;
                        if *count >= n {
                            let avg = *sum / *count as f64;
                            *sum = 0.0;
                            *count = 0;
                            new_cw[i] = self.f(self.cw[i], avg);
                        }
                    }
                }
            }
        }

        // Eq. 3: b_i(n+1) = b_i(n) + z_{i-1}(n) − z_i(n).
        for i in 1..k {
            if z[i - 1] {
                self.b[i] += 1;
            }
            if z[i] {
                debug_assert!(self.b[i] > 0, "a silent buffer cannot transmit");
                self.b[i] -= 1;
            }
        }
        if z[k - 1] {
            self.delivered += 1;
        }
        self.cw = new_cw;
        self.slots += 1;
        z
    }

    /// The threshold map `f` of Eq. 2.
    fn f(&self, cw: u32, b_next: f64) -> u32 {
        if b_next > self.cfg.b_max {
            (cw * 2).min(self.cfg.max_cw)
        } else if b_next < self.cfg.b_min {
            (cw / 2).max(self.cfg.min_cw)
        } else {
            cw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::{region_of, Region};

    #[test]
    fn buffers_follow_flow_conservation() {
        let mut m = SlottedModel::new(ModelConfig {
            adaptive: false,
            ..ModelConfig::default()
        });
        let mut rng = SimRng::new(1);
        let mut inflow = [0u64; 4];
        let mut outflow = [0u64; 4];
        for _ in 0..10_000 {
            let z = m.step(&mut rng);
            for i in 0..4 {
                if z[i] {
                    inflow[i] += 1; // into node i+1
                    outflow[i] += 1;
                }
            }
        }
        // b_i = arrivals (z_{i-1}) - departures (z_i).
        for i in 1..4 {
            assert_eq!(m.buffer(i), inflow[i - 1] - outflow[i]);
        }
        assert_eq!(m.delivered, outflow[3]);
    }

    #[test]
    fn empty_relays_never_transmit() {
        let mut m = SlottedModel::new(ModelConfig {
            adaptive: false,
            ..ModelConfig::default()
        });
        let mut rng = SimRng::new(2);
        for _ in 0..5_000 {
            let b_before: Vec<u64> = (1..4).map(|i| m.buffer(i)).collect();
            let z = m.step(&mut rng);
            for i in 1..4 {
                if z[i] {
                    assert!(b_before[i - 1] > 0);
                }
            }
        }
    }

    #[test]
    fn fixed_windows_are_never_touched() {
        let mut m = SlottedModel::new(ModelConfig {
            adaptive: false,
            ..ModelConfig::default()
        });
        let mut rng = SimRng::new(3);
        for _ in 0..5_000 {
            m.step(&mut rng);
        }
        assert!(m.windows().iter().all(|&c| c == 32));
    }

    #[test]
    fn adaptive_windows_respond_to_thresholds() {
        let mut m = SlottedModel::new(ModelConfig::default());
        // Force b1 over b_max: node 0 must double next step.
        m.set_buffer(1, 25);
        let mut rng = SimRng::new(4);
        m.step(&mut rng);
        assert_eq!(m.windows()[0], 64);
        // The last node's "successor buffer" is the sink (0): it halves
        // toward mincw.
        let mut m = SlottedModel::new(ModelConfig::default());
        let mut rng = SimRng::new(5);
        m.step(&mut rng);
        assert_eq!(m.windows()[3], 16);
    }

    #[test]
    fn window_bounds_hold_forever() {
        let mut m = SlottedModel::new(ModelConfig::default());
        let mut rng = SimRng::new(6);
        for _ in 0..50_000 {
            m.step(&mut rng);
            for &c in m.windows() {
                assert!((16..=32768).contains(&c));
                assert!(c.is_power_of_two());
            }
        }
    }

    #[test]
    fn averaged_caa_variant_also_stabilizes() {
        // The implementation's 50-sample averaging, transplanted into the
        // slotted model, preserves Theorem 1's conclusion: the walk stays
        // bounded (it reacts ~50x slower, so the bound is looser).
        let mut m = SlottedModel::new(ModelConfig {
            averaging: Some(50),
            ..ModelConfig::default()
        });
        let mut rng = SimRng::new(21);
        let mut max_h = 0;
        for _ in 0..300_000 {
            m.step(&mut rng);
            max_h = max_h.max(m.h());
        }
        assert!(
            max_h < 3_000,
            "averaged EZ-flow should stay bounded, max h = {max_h}"
        );
        // And it still delivers.
        assert!(m.delivered as f64 / 300_000.0 > 0.2);
    }

    #[test]
    fn four_hop_fixed_cw_is_unstable_adaptive_is_not() {
        // The paper's Theorem 1, empirically: with fixed windows the
        // 4-hop walk's h(b) grows without bound (driven by region H);
        // with EZ-flow dynamics it stays bounded.
        let steps = 300_000;
        let mut fixed = SlottedModel::new(ModelConfig {
            adaptive: false,
            ..ModelConfig::default()
        });
        let mut rng = SimRng::new(7);
        for _ in 0..steps {
            fixed.step(&mut rng);
        }
        let mut ez = SlottedModel::new(ModelConfig::default());
        let mut rng = SimRng::new(7);
        let mut max_h = 0;
        for _ in 0..steps {
            ez.step(&mut rng);
            max_h = max_h.max(ez.h());
        }
        // Divergence is linear but slow (~0.015/slot): after 300k slots
        // the fixed walk is far above anything a stable walk reaches.
        assert!(
            fixed.h() > 1_000,
            "fixed-cw h should diverge, got {}",
            fixed.h()
        );
        assert!(
            max_h < 500,
            "EZ-flow h should stay bounded, max was {max_h}"
        );
        // The stabilized walk lives near the origin most of the time.
        assert!(matches!(
            region_of(ez.buffer(1), ez.buffer(2), ez.buffer(3)),
            Region::A
                | Region::B
                | Region::C
                | Region::D
                | Region::E
                | Region::F
                | Region::G
                | Region::H
        ));
    }
}
