//! # ezflow-analysis — the discrete-time model of §6
//!
//! The paper's stability proof works on a slotted abstraction of the
//! K-hop chain (inherited from \[Aziz09\]): per slot, exactly one
//! *transmission pattern* `z` occurs, drawn from a distribution that
//! depends on which relay buffers are nonempty (the *region* of the state
//! space, Fig. 12) and on the contention windows (Table 4). The buffers
//! then move by `b_i(n+1) = b_i(n) + z_{i-1}(n) − z_i(n)` (Eq. 3) and
//! EZ-flow updates the windows by the threshold map `f` (Eq. 2).
//!
//! Reverse-engineering Table 4 pins the generative process down exactly:
//!
//! 1. **Contenders** are the source (node 0, always backlogged) and every
//!    relay with a nonempty buffer.
//! 2. **Sequential elimination**: repeatedly pick one remaining contender
//!    with probability proportional to `1/cw_i` (smallest backoff wins);
//!    the winner transmits and silences its 1-hop neighbours (the model's
//!    carrier sensing is one hop); repeat until no contenders remain.
//!    Non-adjacent contenders therefore transmit *simultaneously*.
//! 3. **Success**: transmitter `i`'s frame to `i+1` survives iff node
//!    `i+2` is not also transmitting (1-hop interference at the receiver;
//!    transmitters two hops from the receiver are the model's hidden
//!    terminals).
//!
//! [`kernel::pattern_distribution`] computes the exact pattern
//! distribution by enumerating elimination orders; [`regions`] carries the
//! closed forms of Table 4 for K = 4, and the unit tests prove the two
//! agree symbolically across random window assignments — i.e. our kernel
//! *is* Table 4.
//!
//! [`model::SlottedModel`] runs the random walk with either fixed windows
//! (802.11) or the EZ-flow dynamics, and [`lyapunov`] estimates the drift
//! of `h(b) = Σ b_i` per region — the quantity Theorem 1 bounds below
//! zero — plus the boundedness statistics the theorem implies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod lyapunov;
pub mod model;
pub mod regions;

pub use kernel::pattern_distribution;
pub use lyapunov::{drift_by_region, exact_drift, walk_stats, DriftReport, WalkStats};
pub use model::{ModelConfig, SlottedModel};
pub use regions::{region_of, table4_distribution, Region};
