//! Property-based tests for the slotted model.

use ezflow_analysis::{pattern_distribution, ModelConfig, SlottedModel};
use ezflow_sim::SimRng;
use proptest::prelude::*;

fn cw_strategy() -> impl Strategy<Value = u32> {
    (4u32..=15).prop_map(|e| 1 << e)
}

proptest! {
    /// The exact pattern distribution is a probability distribution, and
    /// every pattern in its support obeys the model's structural rules:
    /// no two adjacent links active, no link active without its sender
    /// contending, and `z_i` implies node `i+2` silent.
    #[test]
    fn kernel_distributions_are_valid(
        contends_tail in prop::collection::vec(any::<bool>(), 1..7),
        cw in prop::collection::vec(cw_strategy(), 8),
    ) {
        let mut contends = vec![true];
        contends.extend(contends_tail);
        let k = contends.len();
        let dist = pattern_distribution(&contends, &cw[..k]);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for (z, p) in &dist {
            prop_assert!(*p > 0.0);
            prop_assert_eq!(z.len(), k);
            for i in 0..k {
                if z[i] {
                    prop_assert!(contends[i], "z_{} active without contender", i);
                    if i + 1 < k {
                        prop_assert!(!z[i + 1], "adjacent links both active");
                    }
                }
            }
        }
    }

    /// Flow conservation along any trajectory: deliveries never exceed
    /// source activations, and every buffer equals its in-minus-out.
    #[test]
    fn model_conserves_packets(seed in any::<u64>(), hops in 2usize..7, adaptive in any::<bool>()) {
        let mut m = SlottedModel::new(ModelConfig {
            hops,
            adaptive,
            ..ModelConfig::default()
        });
        let mut rng = SimRng::new(seed);
        let mut source_out = 0u64;
        for _ in 0..3_000 {
            let z = m.step(&mut rng);
            if z[0] {
                source_out += 1;
            }
        }
        let queued: u64 = m.buffers().iter().sum();
        prop_assert_eq!(source_out, queued + m.delivered);
    }

    /// Windows remain powers of two within bounds, whatever happens.
    #[test]
    fn model_windows_bounded(seed in any::<u64>(), hops in 2usize..7) {
        let cfg = ModelConfig { hops, ..ModelConfig::default() };
        let mut m = SlottedModel::new(cfg);
        let mut rng = SimRng::new(seed);
        for _ in 0..2_000 {
            m.step(&mut rng);
            for &cw in m.windows() {
                prop_assert!(cw.is_power_of_two());
                prop_assert!(cw >= cfg.min_cw && cw <= cfg.max_cw);
            }
        }
    }
}
