//! The §2.3 claim through the umbrella API: EZ-flow also serves traffic
//! with end-to-end feedback (our windowed, TCP-like transport).

use ezflow::net::topo::{self, FlowSpec};
use ezflow::prelude::*;

fn windowed_chain(hops: usize, window: usize, secs: u64) -> Topology {
    let until = Time::from_secs(secs);
    let base = topo::chain(hops, Time::ZERO, until);
    Topology {
        name: "windowed-chain".into(),
        positions: base.positions.clone(),
        loss: base.loss.clone(),
        flows: vec![FlowSpec::windowed(
            0,
            (0..=hops).collect(),
            window,
            Time::ZERO,
            until,
        )],
    }
}

fn std_controller(_: usize) -> Box<dyn Controller> {
    Box::new(FixedController::standard())
}

#[test]
fn ezflow_also_serves_feedback_traffic() {
    // §2.3: EZ-flow works for traffic with end-to-end feedback too. With
    // a moderate window the queues sit inside EZ-flow's comfort band, so
    // the controller must not disturb the flow or its reverse ACK stream.
    let secs = 300;
    let half = Time::from_secs(secs / 2);
    let until = Time::from_secs(secs);
    let t = windowed_chain(4, 12, secs);

    let mut plain = Network::from_topology(&t, 5, &std_controller);
    plain.run_until(until);
    let make_ez = |_: usize| -> Box<dyn Controller> { Box::new(EzFlowController::with_defaults()) };
    let mut ez = Network::from_topology(&t, 5, &make_ez);
    ez.run_until(until);

    let k_plain = plain.metrics.mean_kbps(0, half, until);
    let k_ez = ez.metrics.mean_kbps(0, half, until);
    let d_plain = plain.metrics.delay_net[&0].window(half, until).mean;
    let d_ez = ez.metrics.delay_net[&0].window(half, until).mean;
    assert!(k_plain > 50.0 && k_ez > 50.0, "{k_plain:.0} / {k_ez:.0}");
    assert!(
        k_ez > 0.8 * k_plain,
        "EZ-flow must not strangle the windowed flow: {k_ez:.0} vs {k_plain:.0}"
    );
    assert!(
        d_ez <= d_plain * 1.1,
        "EZ-flow must not worsen delay: {d_ez:.2} vs {d_plain:.2}"
    );
}
