//! Cross-crate integration: compressed versions of the paper's claims,
//! exercised through the umbrella crate's public API exactly as a
//! downstream user would.

use ezflow::net::controller::ControllerFactory;
use ezflow::prelude::*;

fn controllers(ez: bool) -> Box<dyn Fn(usize) -> Box<dyn Controller>> {
    if ez {
        Box::new(|_| Box::new(EzFlowController::with_defaults()))
    } else {
        Box::new(|_| Box::new(FixedController::standard()))
    }
}

/// §4.3 / Table 2: the parking lot starves the long flow under 802.11;
/// EZ-flow restores fairness and aggregate throughput.
#[test]
fn parking_lot_fairness() {
    let secs = 400;
    let until = Time::from_secs(secs);
    let warm = Time::from_secs(secs / 4);
    let topo = testbed(true, true, Time::ZERO, until);

    let mut plain = Network::from_topology(&topo, 5, &*controllers(false));
    plain.run_until(until);
    let kp: Vec<f64> = (0..2)
        .map(|f| plain.metrics.mean_kbps(f, warm, until))
        .collect();
    let fi_plain = jain_index(&kp);

    let make_ez = |_: usize| -> Box<dyn Controller> {
        Box::new(EzFlowController::new(EzFlowConfig::testbed(), 32))
    };
    let mut ez = Network::from_topology(&topo, 5, &make_ez);
    ez.run_until(until);
    let ke: Vec<f64> = (0..2)
        .map(|f| ez.metrics.mean_kbps(f, warm, until))
        .collect();
    let fi_ez = jain_index(&ke);

    assert!(
        kp[0] < kp[1] / 3.0,
        "802.11 must starve F1: {:.1} vs {:.1}",
        kp[0],
        kp[1]
    );
    assert!(
        fi_ez > fi_plain + 0.15,
        "EZ-flow must repair fairness: {fi_plain:.2} -> {fi_ez:.2}"
    );
    assert!(
        ke[0] + ke[1] > kp[0] + kp[1],
        "EZ-flow must raise the aggregate"
    );
}

/// §5.2: the merging-flows scenario stabilizes and adapts when the load
/// changes (compressed timeline).
#[test]
fn merging_flows_adapt() {
    let (t1, t2, t3) = (
        Time::from_secs(200),
        Time::from_secs(400),
        Time::from_secs(600),
    );
    let mut topo = scenario1();
    topo.flows[0].start = Time::from_secs(5);
    topo.flows[0].stop = t3;
    topo.flows[1].start = t1;
    topo.flows[1].stop = t2;

    let mut net = Network::from_topology(&topo, 9, &*controllers(true));
    net.run_until(t3);

    // While both flows run, both get real throughput.
    let k1 = net.metrics.mean_kbps(0, t1 + Duration::from_secs(60), t2);
    let k2 = net.metrics.mean_kbps(1, t1 + Duration::from_secs(60), t2);
    assert!(
        k1 > 20.0 && k2 > 20.0,
        "both flows must flow: {k1:.1} / {k2:.1}"
    );

    // The F1 source's window climbed while competing and the network
    // returned to a healthy single-flow regime afterwards.
    let k_final = net.metrics.mean_kbps(0, t2 + Duration::from_secs(100), t3);
    assert!(
        k_final > 120.0,
        "post-F2 recovery too weak: {k_final:.1} kb/s"
    );
    // Relay queues empty again at the end.
    for node in [10usize, 8, 6, 4, 3, 2, 1] {
        assert!(
            net.occupancy(node) < 25,
            "node {node} still congested at the end"
        );
    }
}

/// §6: the analytical model agrees with the packet simulator about the
/// 4-hop chain — both say 802.11 diverges and EZ-flow does not.
#[test]
fn model_and_simulator_agree() {
    // Packet-level.
    let secs = 200;
    let until = Time::from_secs(secs);
    let topo = chain(4, Time::ZERO, until);
    let mut plain = Network::from_topology(&topo, 3, &*controllers(false));
    plain.run_until(until);
    let mut ez = Network::from_topology(&topo, 3, &*controllers(true));
    ez.run_until(until);
    let half = Time::from_secs(secs / 2);
    let sim_plain_b1 = plain.metrics.buffer[1].window(half, until).mean;
    let sim_ez_b1 = ez.metrics.buffer[1].window(half, until).mean;

    // Slotted model.
    let mut fixed = SlottedModel::new(ModelConfig {
        adaptive: false,
        ..ModelConfig::default()
    });
    let mut adaptive = SlottedModel::new(ModelConfig::default());
    let mut rng = SimRng::new(3);
    let mut rng2 = SimRng::new(3);
    for _ in 0..150_000 {
        fixed.step(&mut rng);
        adaptive.step(&mut rng2);
    }

    assert!(sim_plain_b1 > 40.0, "simulator: 802.11 turbulent");
    assert!(sim_ez_b1 < 5.0, "simulator: EZ-flow stable");
    assert!(
        fixed.h() > 500,
        "model: fixed windows diverge, h={}",
        fixed.h()
    );
    assert!(
        adaptive.h() < 200,
        "model: EZ-flow bounded, h={}",
        adaptive.h()
    );
}

/// Controllers are interchangeable through the same harness (the crate's
/// extension point).
#[test]
fn baselines_run_through_the_same_api() {
    let secs = 120;
    let until = Time::from_secs(secs);
    let topo = chain(4, Time::ZERO, until);
    let flows = topo.flows.clone();

    let factories: Vec<(&str, ControllerFactory)> = vec![
        ("static-q", Box::new(static_penalty_factory(&flows, 16, 64))),
        ("diffq", Box::new(|_| Box::new(DiffQController::new()))),
    ];
    for (name, make) in factories {
        let mut net = Network::from_topology(&topo, 1, &*make);
        net.run_until(until);
        assert!(
            net.metrics.delivered[&0] > 100,
            "{name} must deliver traffic"
        );
    }
}
