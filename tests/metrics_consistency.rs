//! Cross-crate bookkeeping invariants on a mixed scenario: the metrics,
//! MAC counters and channel counters must tell one consistent story.

use ezflow::prelude::*;

#[test]
fn counters_are_mutually_consistent() {
    let secs = 150;
    let until = Time::from_secs(secs);
    let mut topo = scenario1();
    topo.flows[0].start = Time::from_secs(1);
    topo.flows[0].stop = until;
    topo.flows[1].start = Time::from_secs(1);
    topo.flows[1].stop = until;

    let mut net = Network::from_topology(&topo, 13, &|_| {
        Box::new(EzFlowController::with_defaults()) as Box<dyn Controller>
    });
    net.run_until(until);

    // 1. Per-flow delivered counts match the throughput series bit-counts.
    for f in [0u32, 1] {
        let delivered = net.metrics.delivered[&f];
        let bits = net.metrics.throughput[&f].total_bits();
        assert_eq!(bits as u64, delivered * 8_000, "flow {f}");
        assert_eq!(
            net.metrics.delay_net[&f].len() as u64,
            delivered,
            "one delay sample per delivery"
        );
    }

    // 2. Channel-level: clean deliveries to addressees dominate; every
    //    collision was at most a retry later.
    let ch = net.channel_stats();
    assert!(ch.tx_started > 0);
    assert!(ch.clean_deliveries > 0);

    // 3. MAC totals: per node, successes <= attempts; ack counts roughly
    //    pair up with the neighbours' successes.
    let mut total_success = 0;
    let mut total_attempts = 0;
    let mut total_acks = 0;
    for n in 0..net.node_count() {
        let s = net.mac_stats(n);
        assert!(s.tx_success <= s.tx_attempts, "node {n}");
        total_success += s.tx_success;
        total_attempts += s.tx_attempts;
        total_acks += s.acks_sent;
    }
    assert!(total_attempts >= total_success);
    // Every success consumed an ACK that some node sent.
    assert!(total_acks >= total_success);

    // 4. Deliveries at sinks are a subset of MAC-level upward deliveries.
    let mac_delivered: u64 = (0..net.node_count())
        .map(|n| net.mac_stats(n).delivered)
        .sum();
    let sunk: u64 = net.metrics.delivered.values().sum();
    assert!(mac_delivered >= sunk, "relays also deliver upward");

    // 5. Delay samples are causally sane: nonnegative, and net delay
    //    never exceeds e2e delay for the matching packet count.
    for f in [0u32, 1] {
        let d_net = net.metrics.delay_net[&f].points();
        let d_e2e = net.metrics.delay_e2e[&f].points();
        assert_eq!(d_net.len(), d_e2e.len());
        for ((_, dn), (_, de)) in d_net.iter().zip(&d_e2e) {
            assert!(*dn >= 0.0);
            assert!(de >= dn, "e2e includes the source queue wait");
        }
    }

    // 6. Sampling covered the whole run.
    assert_eq!(net.metrics.buffer[0].len() as u64, secs);
}

#[test]
fn trace_ring_records_when_enabled() {
    let secs = 10;
    let until = Time::from_secs(secs);
    let topo = chain(2, Time::ZERO, until);
    let mut spec = NetworkSpec::from_topology(&topo, 2);
    spec.trace_cap = 512;
    let mut net = Network::new(spec, &|_| {
        Box::new(FixedController::standard()) as Box<dyn Controller>
    });
    net.run_until(until);
    assert!(net.trace.pushed_total() > 100, "tx events must be traced");
    let text = net.trace.render();
    assert!(text.contains("TxStart"));
    assert!(text.contains("Data"));
    assert!(text.contains("Ack"));
}
